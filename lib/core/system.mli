(** System assembly: boots a simulated Nemesis machine.

    Wires together the simulated hardware (MMU, RamTab, disk), the
    system-domain services (stretch allocator, frames allocator,
    high-level translation), the user-safe backing store (USD + SFS)
    and the CPU scheduler, and provides domain creation with the full
    set of per-domain machinery (protection domain, frame stack,
    MMEntry, fault channel, revocation wiring).

    The disk is split into two partitions, as in the paper's
    experiments: a swap partition managed by the SFS and a file-system
    partition that Figure 9's file-system client reads directly through
    the USD. *)

open Engine
open Hw
open Disk
open Sched

type config = {
  seed : int;
  main_memory_mb : int;
  page_table : [ `Linear | `Guarded ];
  cost : Cost.t;
  disk_params : Disk_params.t;
  usd_rollover : bool;
  usd_laxity : bool;
  revocation_deadline : Time.span;
  va_bits : int;
  sfs_journal_blocks : int;
      (** bloks reserved at the head of the swap partition for the
          SFS's crash-consistency intent journal (0 = no journal, the
          seed behaviour) *)
  fs_journal_blocks : int;
      (** same, for the file store's partition *)
}

val default_config : config
(** 64 MB of main memory, linear page table, the paper's cost model and
    disk, roll-over and laxity enabled, T = 100 ms, no journals. *)

type t

(** Typed errors for domain admission and stretch binding. The
    printers render the exact messages the stringly API used to
    return, so experiments and reports are unchanged. *)
type error =
  | Cpu_admission of { reason : string }
      (** CPU admission control refused (utilisation Σ s/p would
          exceed 1, or a malformed contract). *)
  | Frames_admission of Frames.error
  | Usd_admission of { reason : string }
  | Swap_open of { name : string; error : Usbs.Sfs.open_error }
  | No_detached_swap of { name : string }
  | Swap_attached of { name : string }
  | Store_error of { reason : string }
  | Driver_error of { reason : string }
  | Not_a_driver_factory of { path : string }
  | No_driver_published of { path : string }

val pp_error : Format.formatter -> error -> unit
val error_message : error -> string

type domain_spec = {
  sp_name : string;
  sp_cpu_period : Time.span;
  sp_cpu_slice : Time.span;
  sp_guarantee : int;
  sp_optimistic : int;
}
(** A domain's admission contract, captured at {!add_domain} — what
    {!respawn} re-admits a killed domain's successor under. *)

type domain = private {
  dom : Domains.t;
  mm : Mm_entry.t;
  frames_client : Frames.client;
  env : Stretch_driver.env;
  dspec : domain_spec;
  sys : t;
}

type Namespace.entry +=
  | Driver_factory of (domain -> Stretch.t -> (Stretch_driver.t, error) result)
        (** A published stretch-driver creator: applications look these
            up in the system name-space and bind by name. *)

val create : ?config:config -> unit -> t

(** {2 Accessors} *)

val sim : t -> Sim.t
val config : t -> config
val cpu : t -> Cpu.t
val mmu : t -> Mmu.t
val translation : t -> Translation.t

(** The frame-ownership table — read-only introspection (e.g. the
    chaos experiment verifying a killed domain's frames were
    reclaimed). *)
val ramtab : t -> Ramtab.t
val stretch_allocator : t -> Stretch_allocator.t
val frames : t -> Frames.t
val disk : t -> Disk_model.t
val usd : t -> Usbs.Usd.t
val sfs : t -> Usbs.Sfs.t
val file_store : t -> Usbs.File_store.t
val domains : t -> domain list

val fs_partition : t -> int * int
(** [(first_lba, nblocks)] of the file-system partition. *)

val namespace : t -> Namespace.t
(** The system name-space (Plan-9-style contexts). *)

val publish_standard_drivers : t -> unit
(** Bind the parameterless driver factories at ["drivers/nailed"] and
    ["drivers/physical"]. *)

val bind_by_name :
  domain -> path:string -> Stretch.t -> (Stretch_driver.t, error) result
(** Look up a {!Driver_factory} in the name-space and bind with it. *)

val run : ?until:Time.t -> t -> unit
(** Run the simulation (see {!Sim.run}). *)

(** {2 Domains} *)

val add_domain :
  t -> name:string -> ?cpu_period:Time.span -> ?cpu_slice:Time.span ->
  guarantee:int -> optimistic:int -> unit -> (domain, error) result
(** Admission control may refuse: [Cpu_admission] when CPU utilisation
    would exceed 1, [Frames_admission Admission_overcommit] when Σg
    would exceed main memory. *)

val kill_domain : t -> domain -> unit

val spec : domain -> domain_spec

val respawn : t -> domain_spec -> (domain, error) result
(** Re-admit a fresh domain under a dead one's original contract: same
    name, CPU period/slice and frame guarantee/optimistic allocation.
    Goes through the same admission control as {!add_domain} (it can
    refuse if the dead domain's share has been given away). *)

val admit_service :
  t -> guarantee:int -> optimistic:int ->
  (int * Frames.client, error) result
(** A bare frames contract with no schedulable domain behind it — the
    share host and the compressed-memory pool of [lib/share] hold
    frames this way. Returns the fresh owner id (from the domain-id
    counter) and the client. A service client holding optimistic
    frames must install a revocation handler
    ({!Frames.set_revocation_handler}); there is no MMEntry to do it
    for them. *)

val spawn_cow :
  t -> template:domain -> name:string ->
  fork:(domain -> ('a, error) result) ->
  (domain * 'a, error) result
(** Fork a tenant from a template: admit a fresh domain under the
    template's {!domain_spec} envelope (its own name), then hand it to
    [fork] to build the copy-on-write address space (see
    [Share.Cow.spawn]). If [fork] fails the half-built domain is
    killed and its resources released. *)

val bind_driver : domain -> Stretch.t -> Stretch_driver.t -> unit
(** Bind an application-built stretch driver (the composed CoW /
    shared-segment drivers of [lib/share]). Replaces any existing
    binding for the stretch, letting an outer driver interpose on an
    inner one bound moments before. *)

(** {2 Stretch conveniences} *)

val alloc_stretch :
  domain -> ?base:Addr.vaddr -> ?global:Rights.t -> bytes:int -> unit ->
  (Stretch.t, string) result

val free_stretch : domain -> Stretch.t -> unit

val bind_nailed : domain -> Stretch.t -> (Stretch_driver.t, error) result

val bind_physical :
  domain -> ?prealloc:int -> Stretch.t -> (Stretch_driver.t, error) result

val bind_paged :
  domain -> ?forgetful:bool -> ?initial_frames:int -> ?readahead:int ->
  ?policy:Policy.Spec.t -> ?spare_pages:int -> ?restartable:bool ->
  ?backing:(Usbs.Sfs.swapfile -> Tier.Backing.t) ->
  swap_bytes:int -> qos:Usbs.Qos.t -> Stretch.t -> unit ->
  (Stretch_driver.t * Sd_paged.handle, error) result
(** Opens a swap file on the SFS (negotiating the disk QoS), creates a
    paged driver under [policy] (default: the seed FIFO/write-through
    behaviour) and binds it. [spare_pages] reserves bad-blok remap
    spares in the swap extent (see {!Usbs.Sfs.open_swap}).
    [restartable] (default false) makes the swapfile survive the
    domain's death {e detached} instead of closed, so a {!respawn}ed
    incarnation can {!bind_paged_restored}.

    [backing] is applied to the freshly opened swapfile and the
    resulting {!Tier.Backing.t} carries the driver's data path — pass
    [(fun swap -> Tier.Store.backing (Tier.Store.create … ~swap ()))]
    to page through the disaggregated-memory tier. The swapfile itself
    remains System-owned (closed or detached on domain death). *)

val bind_paged_restored :
  domain -> ?initial_frames:int -> ?readahead:int ->
  ?policy:Policy.Spec.t -> qos:Usbs.Qos.t -> Stretch.t -> unit ->
  (Stretch_driver.t * Sd_paged.handle, error) result
(** The restart path: reattach the detached swapfile the domain's
    previous incarnation left behind (found by name — the domain must
    be {!respawn}ed under the same name), and bind a paged driver that
    re-adopts the journal-committed (page, slot) image. The restored
    pages fault their previous contents back in from swap on first
    touch; run {!Usbs.Sfs.remount} first so the committed image is the
    recovered one. *)

val bind_mapped :
  domain -> mode:Sd_mapped.mode -> ?initial_frames:int ->
  file:Usbs.File_store.file -> qos:Usbs.Qos.t -> Stretch.t -> unit ->
  (Stretch_driver.t * (unit -> Sd_mapped.info), error) result
(** Map a file-store file behind the stretch: admits a USD client under
    the domain's own guarantee for the data path; a [Private] mapping
    also allocates an anonymous copy-on-write backing file. *)
