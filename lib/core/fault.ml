open Engine
open Hw

type outcome = Resolved | Failed of string

type t = {
  va : Addr.vaddr;
  access : Mmu.access;
  kind : Mmu.fault_kind;
  sid : int option;
  raised_at : Time.t;
  resolved : outcome Sync.Ivar.t;
  mutable span : Obs.Span.t option;
}

exception Unresolved of t * string

let make ~va ~access ~kind ~sid ~now =
  { va; access; kind; sid; raised_at = now; resolved = Sync.Ivar.create ();
    span = None }

let pp_access ppf = function
  | `Read -> Format.pp_print_string ppf "read"
  | `Write -> Format.pp_print_string ppf "write"
  | `Execute -> Format.pp_print_string ppf "exec"

let pp ppf t =
  Format.fprintf ppf "%a at %a (%a, sid=%s)" Mmu.pp_fault_kind t.kind
    Addr.pp_vaddr t.va pp_access t.access
    (match t.sid with Some s -> string_of_int s | None -> "-")
