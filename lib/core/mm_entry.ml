open Engine

type rev_request = { k : int; frames : Frames.t; client : Frames.client }

type t = {
  dom : Domains.t;
  bindings : (int, Stretch_driver.t) Hashtbl.t;
  mutable fault_entry : Fault.t Entry.t option;
  mutable rev_entry : rev_request Entry.t option;
}

let domain t = t.dom

let driver_for t ~sid = Hashtbl.find_opt t.bindings sid

let drivers t = Hashtbl.fold (fun _ d acc -> d :: acc) t.bindings []

let the_fault_entry t = Option.get t.fault_entry
let the_rev_entry t = Option.get t.rev_entry

let finish (fault : Fault.t) outcome =
  ignore (Sync.Ivar.try_fill fault.Fault.resolved outcome)

(* Demultiplex the faulting stretch to its driver. *)
let dispatch t (fault : Fault.t) invoke ~on_retry =
  match fault.Fault.sid with
  | None ->
    finish fault (Fault.Failed "fault outside any stretch");
    `Done
  | Some sid ->
    (match driver_for t ~sid with
    | None ->
      finish fault (Fault.Failed "no stretch driver bound");
      `Done
    | Some driver ->
      Domains.consume_cpu t.dom (Domains.cost t.dom).Hw.Cost.driver_invoke;
      let disp_span =
        if !Obs.enabled then
          Some
            (Obs.Span.start
               ~now:(Sim.now (Domains.sim t.dom))
               ~label:(Domains.name t.dom)
               ?parent:fault.Fault.span "mm.dispatch")
        else None
      in
      let result = invoke driver fault in
      (match disp_span with
      | Some s -> Obs.Span.finish ~now:(Sim.now (Domains.sim t.dom)) s
      | None -> ());
      (match result with
      | Stretch_driver.Success ->
        finish fault Fault.Resolved;
        `Done
      | Stretch_driver.Retry -> on_retry ()
      | Stretch_driver.Failure msg ->
        finish fault (Fault.Failed msg);
        `Done))

(* Notification-handler side: the driver's fast path (no IDC); a Retry
   blocks the faulting thread (it already is) and defers to a worker. *)
let fault_fast t fault =
  dispatch t fault
    (fun d -> d.Stretch_driver.fast)
    ~on_retry:(fun () -> `Defer)

(* Worker side: the driver's full path (IDC and blocking allowed). *)
let fault_slow t fault =
  ignore
    (dispatch t fault
       (fun d -> d.Stretch_driver.full)
       ~on_retry:(fun () ->
         finish fault (Fault.Failed "driver retried on the full path");
         `Done))

(* Revocation: cycle through the drivers requesting that each
   relinquish frames until enough have been freed, then reply. *)
let revoke_slow t { k; frames; client } =
  let freed = ref 0 in
  List.iter
    (fun d ->
      if !freed < k then
        freed := !freed + d.Stretch_driver.relinquish ~want:(k - !freed))
    (drivers t);
  Frames.revocation_ready frames client

let create ?(fault_workers = 1) dom =
  let t =
    { dom; bindings = Hashtbl.create 16; fault_entry = None; rev_entry = None }
  in
  t.fault_entry <-
    Some
      (Entry.create dom ~name:"mm" ~workers:fault_workers
         ~fast:(fault_fast t) ~slow:(fault_slow t) ());
  t.rev_entry <-
    Some
      (Entry.create dom ~name:"mm-revoke" ~fast:(fun _ -> `Defer)
         ~slow:(revoke_slow t) ());
  (* The kernel's fault dispatch already runs inside a costed
     notification, so enter the entry without a second activation. *)
  Domains.set_fault_handler dom (Entry.handle_now (the_fault_entry t));
  t

let bind t (s : Stretch.t) driver =
  driver.Stretch_driver.bind s;
  Hashtbl.replace t.bindings s.Stretch.sid driver

let unbind t (s : Stretch.t) = Hashtbl.remove t.bindings s.Stretch.sid

let wire_revocation t frames client =
  Frames.set_revocation_handler client (fun ~k ~deadline ->
      ignore deadline;
      Entry.notify (the_rev_entry t) { k; frames; client })

let faults_fast t = Entry.fast_handled (the_fault_entry t)
let faults_slow t = Entry.slow_handled (the_fault_entry t)
let revocations_handled t = Entry.slow_handled (the_rev_entry t)
let queue_depth t = Entry.depth (the_fault_entry t)
let idle t = queue_depth t = 0

let pp_stats ppf t =
  Format.fprintf ppf "fast=%d slow=%d revocations=%d" (faults_fast t)
    (faults_slow t) (revocations_handled t)
