open Hw

(* Residency state of one page of the stretch.

   [dirty_latched] accumulates dirty bits lost to reference-sampling:
   policies that clear the referenced bit do so by unmap+remap, which
   discards the PTE's dirty bit, so it is latched here. [via_prefetch]
   marks a page brought in by read-ahead whose first reference has not
   been observed yet — resolved to a hit or a waste at the first
   reference-sample or at eviction. *)
type pstate =
  | Fresh  (* no contents yet: demand-zero on touch *)
  | Resident of {
      pfn : int;
      clean_on_disk : bool;
      mutable dirty_latched : bool;
      mutable via_prefetch : bool;
    }
  | Wb_pending of { pfn : int }
      (* evicted dirty, parked in the write-behind buffer: the frame
         still holds the only up-to-date copy until the flush *)
  | Swapped
  | Lost
      (* contents unrecoverable: the backing bloks went bad and every
         recovery rung (retry, spare remap, re-blok) was exhausted; a
         fault on the page is a domain fault *)

type info = {
  page_ins : int;
  page_outs : int;
  demand_zeros : int;
  evictions : int;
  prefetched : int;
  prefetch_hits : int;
  prefetch_waste : int;
  wb_flushes : int;
  rescues : int;
  lost_pages : int;
  rebloks : int;
  shed_frames : int;
  restored_pages : int;
  wb_degraded : bool;
  swap_exhausted : bool;
  crashed : bool;
}

type state = {
  env : Stretch_driver.env;
  swap : Usbs.Sfs.swapfile;
  (* every data-path transaction goes through [backing]; the default
     ([Tier.Backing.of_sfs swap]) is the swapfile itself, bit-for-bit.
     [swap] stays for identity (journal reattach, extent scoping). *)
  backing : Tier.Backing.t;
  forgetful : bool;
  spec : Policy.Spec.t;
  repl : Policy.Replacement.t;
  pf : Policy.Prefetch.t;
  mutable wb : Policy.Writeback.t;
  bitmap : Bloks.t;
  mutable stretch : Stretch.t option;
  mutable pages : pstate array;       (* per page of the stretch *)
  mutable blok_of_page : int array;   (* -1 = none assigned *)
  mutable pool : int list;            (* owned, unmapped frames *)
  mutable tick : int;                 (* per-domain virtual time *)
  mutable page_ins : int;
  mutable page_outs : int;
  mutable demand_zeros : int;
  mutable evictions : int;
  mutable prefetched : int;
  mutable prefetch_hits : int;
  mutable prefetch_waste : int;
  mutable rescues : int;
  mutable lost_pages : int;
  mutable rebloks : int;
  mutable shed : int;
  (* Degradations (sticky): [degraded_sync] disables write-behind
     parking after a flush lost data; [swap_exhausted] marks the blok
     bitmap dry — only clean victims can yield frames, and the driver
     stops holding optimistic pool frames. *)
  mutable degraded_sync : bool;
  mutable swap_exhausted : bool;
  (* Crash consistency (journaled backing store only): [restore] is
     the committed (page, slot) image a restarted domain re-adopts at
     bind; [retiring] maps a page to the committed slot its in-flight
     out-of-place rewrite supersedes (freed when the rewrite commits);
     [crashed] latches when a crash point tears one of our writes —
     the backing store is gone mid-operation and every later fault is
     a domain fault (the reaper then kills the domain). *)
  restore : (int * int) list;
  retiring : (int, int) Hashtbl.t;
  mutable restored : int;
  mutable crashed : bool;
}

(* Write-behind is in force only while it has not been degraded away. *)
let wb_on st = Policy.Writeback.enabled st.wb && not st.degraded_sync

let stack st = Frames.frame_stack st.env.Stretch_driver.frames_client

(* Span helpers: driver code always runs on some domain's process, so
   the current process's simulation clock is the right one. *)
let span_start st ?parent sname =
  if !Obs.enabled then
    Some
      (Obs.Span.start
         ~now:(Engine.Sim.now (Engine.Proc.current_sim ()))
         ~label:st.env.Stretch_driver.domain_name ?parent sname)
  else None

let span_finish = function
  | Some s -> Obs.Span.finish ~now:(Engine.Sim.now (Engine.Proc.current_sim ())) s
  | None -> ()

let metric_inc st name =
  if !Obs.enabled then
    Obs.Metrics.inc ~label:st.env.Stretch_driver.domain_name name

let metric_add st name n =
  if n > 0 && !Obs.enabled then
    Obs.Metrics.add ~label:st.env.Stretch_driver.domain_name name n

(* Bind-time failwiths: faulting before bind, binding twice, or
   binding a stretch larger than the swap are wiring bugs in the
   domain that created the driver. Run-time store errors, by
   contrast, flow through the typed degradation path. *)
let the_stretch st =
  match st.stretch with
  | Some s -> s
  | None -> failwith "paged driver: no stretch bound"

let take_pool st =
  match st.pool with
  | [] -> None
  | pfn :: rest ->
    st.pool <- rest;
    Some pfn

let bind st (s : Stretch.t) =
  if st.stretch <> None then
    failwith "paged driver: already bound to a stretch";
  let npages = Stretch.npages s in
  if st.backing.Tier.Backing.page_capacity () < npages then
    failwith
      (Printf.sprintf
         "paged driver: swap too small (%d pages) for stretch (%d pages)"
         (st.backing.Tier.Backing.page_capacity ())
         npages);
  st.stretch <- Some s;
  st.pages <- Array.make npages Fresh;
  st.blok_of_page <- Array.make npages (-1);
  (* Restart: re-adopt the committed (page, slot) image recovered from
     the journal — the pages start Swapped and fault back in from the
     swapfile; their slots are claimed out of the fresh bitmap. *)
  List.iter
    (fun (p, b) ->
      if
        p >= 0 && p < npages
        && b >= 0
        && b < Bloks.capacity st.bitmap
        && Bloks.claim st.bitmap b
      then begin
        st.pages.(p) <- Swapped;
        st.blok_of_page.(p) <- b;
        st.restored <- st.restored + 1
      end)
    st.restore;
  if st.restored > 0 then metric_add st "sd.restored_pages" st.restored

let owns_fault st (fault : Fault.t) =
  match (fault.sid, st.stretch) with
  | Some sid, Some s -> s.Stretch.sid = sid
  | _ -> false

(* A prefetched page's fate is decided at the first point we observe
   its referenced bit (a reference-sampling pass or its eviction). *)
let settle_prefetch st p referenced =
  match st.pages.(p) with
  | Resident r when r.via_prefetch && referenced ->
    r.via_prefetch <- false;
    st.prefetch_hits <- st.prefetch_hits + 1;
    metric_inc st "policy.prefetch_hit"
  | _ -> ()

(* The window through which replacement policies see the hardware:
   referenced bits live in the PTEs; clearing one is the user-level
   unmap+remap dance (which re-arms FOR/FOW), charged to the domain. *)
let make_probe st =
  let env = st.env in
  { Policy.Replacement.resident =
      (fun p ->
        match st.pages.(p) with Resident _ -> true | _ -> false);
    referenced =
      (fun p ->
        match st.pages.(p) with
        | Resident _ ->
          let va = Stretch.page_base (the_stretch st) p in
          let pte, cost = Translation.trans env.Stretch_driver.translation ~va in
          env.Stretch_driver.consume_cpu cost;
          Pte.referenced pte
        | _ -> false);
    clear_referenced =
      (fun p ->
        match st.pages.(p) with
        | Resident r ->
          let va = Stretch.page_base (the_stretch st) p in
          let pte = Stretch_driver.unmap_page env va in
          if Pte.dirty pte then r.dirty_latched <- true;
          settle_prefetch st p (Pte.referenced pte);
          Stretch_driver.map_page env va ~pfn:r.pfn
        | _ -> ()) }

(* Map [page] into [pfn] as a demand-zeroed page. *)
let install_zero st page pfn =
  let env = st.env in
  let va = Stretch.page_base (the_stretch st) page in
  Stretch_driver.map_page env va ~pfn;
  env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.page_zero;
  st.pages.(page) <-
    Resident
      { pfn; clean_on_disk = false; dirty_latched = false;
        via_prefetch = false };
  st.repl.Policy.Replacement.insert page;
  st.tick <- st.tick + 1;
  Frame_stack.move_to_bottom (stack st) pfn;
  st.demand_zeros <- st.demand_zeros + 1

let note_swap_exhausted st =
  if not st.swap_exhausted then begin
    st.swap_exhausted <- true;
    metric_inc st "sd.swap_exhausted"
  end

(* Ensure the page has a blok assigned (first-fit from the bitmap).
   [None] means the bitmap is dry — the typed replacement for the old
   "swap space exhausted" abort; callers degrade instead of dying.

   Out-of-place rule (journaled backing store): a blok whose slot is
   covered by a journal Commit record is never overwritten in place —
   a torn write would destroy the only durable copy. The rewrite goes
   to a fresh blok; the committed one is parked in [retiring] and
   freed only once the new write's Commit record has landed. *)
let blok_for st page =
  let fresh () =
    match Bloks.alloc st.bitmap with
    | Some b -> Some b
    | None ->
      note_swap_exhausted st;
      None
  in
  let b = st.blok_of_page.(page) in
  if b < 0 then begin
    match fresh () with
    | Some b ->
      st.blok_of_page.(page) <- b;
      Some b
    | None -> None
  end
  else if st.backing.Tier.Backing.slot_committed b then begin
    match fresh () with
    | Some b' ->
      Hashtbl.replace st.retiring page b;
      st.blok_of_page.(page) <- b';
      Some b'
    | None -> None
  end
  else Some b

(* The retiring pairs a committing write of [pages] must carry, and
   their release (bitmap free) once that write has committed. *)
let retire_for st pages =
  List.filter_map
    (fun p ->
      match Hashtbl.find_opt st.retiring p with
      | Some old -> Some (p, old)
      | None -> None)
    pages

let release_retired st pages =
  List.iter
    (fun p ->
      match Hashtbl.find_opt st.retiring p with
      | Some old ->
        Hashtbl.remove st.retiring p;
        Bloks.free st.bitmap old
      | None -> ())
    pages

let note_crashed st =
  if not st.crashed then begin
    st.crashed <- true;
    metric_inc st "sd.crashed"
  end

(* Invert [blok_of_page] over a write-behind run: the (page, slot)
   assignment pairs a committing flush must record. *)
let pages_for_run st ~blok ~nbloks =
  let acc = ref [] in
  Array.iteri
    (fun p b -> if b >= blok && b < blok + nbloks then acc := (p, b) :: !acc)
    st.blok_of_page;
  List.sort (fun (_, a) (_, b) -> compare a b) !acc

let mark_lost st page =
  st.pages.(page) <- Lost;
  st.lost_pages <- st.lost_pages + 1;
  metric_inc st "sd.lost_pages"

(* Write [page]'s blok synchronously, re-blokking around bad bloks: a
   write that exhausts the USBS recovery ladder (retries, spare
   remaps) abandons the bad blok — it is never returned to the
   bitmap — takes a fresh one and rewrites from the still-held frame.
   Returns [false] when the bitmap too is dry and the contents are
   unrecoverable (the caller marks the page [Lost]). *)
let write_now st ~page blok =
  st.env.Stretch_driver.assert_idc_allowed "USBS write";
  let journaled = st.backing.Tier.Backing.journaled () in
  let rec go blok =
    let sp = span_start st "usd.write" in
    let r =
      if journaled then
        st.backing.Tier.Backing.write_pages_commit ~page_index:blok ~npages:1
          ~pages:[ (page, blok) ] ~retire:(retire_for st [ page ])
      else st.backing.Tier.Backing.write_page ~page_index:blok
    in
    span_finish sp;
    match r with
    | Ok () ->
      if journaled then release_retired st [ page ];
      st.page_outs <- st.page_outs + 1;
      metric_inc st "policy.page_out";
      true
    | Error `Retired -> false
    | Error `Crashed ->
      note_crashed st;
      false
    | Error (`Lost_pages _) -> (
      match Bloks.alloc st.bitmap with
      | Some b' ->
        st.blok_of_page.(page) <- b';
        st.rebloks <- st.rebloks + 1;
        Inject.note_remapped "sd.reblok";
        metric_inc st "sd.rebloks";
        go b'
      | None ->
        note_swap_exhausted st;
        Inject.note_killed "sd.write";
        false)
  in
  go blok

(* Issue every parked write-behind entry (coalesced by the buffer into
   contiguous USD transactions) and return the freed frames to the
   pool. A page's state flips to Swapped at the commit point — the
   instant its run's write is issued, not when the whole flush
   returns — so pages in runs not yet written stay Wb_pending and
   rescuable while earlier runs block on disk. Flipping at issue time
   is sound because one client's USD requests are served FIFO: a fault
   that then reads the page queues its read behind the in-flight write
   and cannot observe stale disk contents. The frame returns to the
   pool only once its run's write has completed (it is pinned while
   the "DMA" is in flight). Blocking (disk I/O): worker-thread context
   only; safe to run concurrently from the fault and revocation
   workers (each flush iteration claims a disjoint run). *)
let flush_wb st =
  if Policy.Writeback.pending st.wb > 0 then begin
    st.env.Stretch_driver.assert_idc_allowed "USBS write";
    ignore
      (Policy.Writeback.flush st.wb
         ~commit:(fun ~page ->
           st.pages.(page) <- (if st.forgetful then Fresh else Swapped))
         ~release:(fun ~page:_ ~frame -> st.pool <- frame :: st.pool))
  end

type evicted = No_victim | Freed of int | Parked | Swap_full

(* Non-destructive "would cleaning be needed" probe (costed like any
   other PTE inspection). *)
let needs_clean st (r : pstate) victim =
  match r with
  | Resident r ->
    st.forgetful || r.dirty_latched
    || (not r.clean_on_disk)
    ||
    let env = st.env in
    let va = Stretch.page_base (the_stretch st) victim in
    let pte, cost = Translation.trans env.Stretch_driver.translation ~va in
    env.Stretch_driver.consume_cpu cost;
    Pte.dirty pte
  | _ -> false

(* Evict the policy's victim, cleaning it to the USBS first if needed
   (immediately, or by parking it in the write-behind buffer), and
   hand back its frame if one came free. [clean_only] is the prefetch
   caller's flag: a victim that would only be *parked* (write-behind
   enabled, needs cleaning) yields no frame now, so eviction would
   cost a resident page for nothing — pre-check its dirtiness
   non-destructively and leave it resident instead. [no_clean] is the
   swap-exhaustion degradation's flag: with the blok bitmap dry only
   victims needing no cleaning can be evicted at all, whatever the
   write-behind setting. Blocking (disk I/O): worker-thread context
   only. *)
let evict_one ?(clean_only = false) ?(no_clean = false) st =
  let env = st.env in
  match st.repl.Policy.Replacement.victim (make_probe st) with
  | None -> No_victim
  | Some victim ->
    (match st.pages.(victim) with
    | Resident _
      when (clean_only && wb_on st && needs_clean st st.pages.(victim) victim)
           || (no_clean && needs_clean st st.pages.(victim) victim) ->
      (* Re-insert: the policy sees the page as freshly mapped — cheap
         protection for a page we just chose not to lose. *)
      st.repl.Policy.Replacement.insert victim;
      No_victim
    | Resident r ->
      let va = Stretch.page_base (the_stretch st) victim in
      let pte = Stretch_driver.unmap_page env va in
      settle_prefetch st victim (Pte.referenced pte);
      let dirty = Pte.dirty pte || r.dirty_latched in
      let must_clean = st.forgetful || dirty || not r.clean_on_disk in
      let decision =
        if not must_clean then `Clean_already
        else
          match blok_for st victim with
          | Some b -> `Clean_to b
          | None -> `Exhausted
      in
      (match decision with
      | `Exhausted ->
        (* Swap space exhausted: the victim cannot be cleaned, so it
           cannot be evicted either — remap it and tell the caller to
           degrade (clean-only eviction, shedding) instead of dying. *)
        if Pte.dirty pte then r.dirty_latched <- true;
        Stretch_driver.map_page env va ~pfn:r.pfn;
        st.repl.Policy.Replacement.insert victim;
        Swap_full
      | (`Clean_already | `Clean_to _) as decision ->
        (match st.pages.(victim) with
        | Resident { via_prefetch = true; _ } ->
          st.prefetch_waste <- st.prefetch_waste + 1;
          metric_inc st "policy.prefetch_waste"
        | _ -> ());
        metric_inc st "policy.evict";
        (match decision with
        | `Clean_to blok ->
          if wb_on st then begin
            st.evictions <- st.evictions + 1;
            st.pages.(victim) <- Wb_pending { pfn = r.pfn };
            Policy.Writeback.enqueue st.wb ~page:victim ~blok ~frame:r.pfn;
            Parked
          end
          else begin
            let ok = write_now st ~page:victim blok in
            st.evictions <- st.evictions + 1;
            (* The paging-out experiment's driver forgets the disk
               copy; a failed write loses the contents but still
               frees the frame. *)
            if st.forgetful then st.pages.(victim) <- Fresh
            else if ok then st.pages.(victim) <- Swapped
            else mark_lost st victim;
            Freed r.pfn
          end
        | `Clean_already ->
          st.evictions <- st.evictions + 1;
          st.pages.(victim) <- Swapped;
          Freed r.pfn))
    | Fresh | Swapped | Wb_pending _ | Lost ->
      (* The policy's probe guarantees victims are resident. *)
      No_victim)

(* Read-your-writes fast path: a fault on a parked page cancels the
   pending write and remaps the very frame that holds the data — no
   disk I/O. The page is still dirty, so it stays clean_on_disk:false
   and will be cleaned again on its next eviction. *)
let try_rescue st page =
  match st.pages.(page) with
  | Wb_pending { pfn } ->
    (match Policy.Writeback.rescue st.wb ~page with
    | Some _ ->
      let va = Stretch.page_base (the_stretch st) page in
      Stretch_driver.map_page st.env va ~pfn;
      st.pages.(page) <-
        Resident
          { pfn; clean_on_disk = false; dirty_latched = true;
            via_prefetch = false };
      st.repl.Policy.Replacement.insert page;
      st.tick <- st.tick + 1;
      Frame_stack.move_to_bottom (stack st) pfn;
      st.rescues <- st.rescues + 1;
      metric_inc st "policy.rescue";
      true
    | None -> false)
  | _ -> false

let fast st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault when st.crashed ->
      (* The backing store tore one of our writes mid-operation: the
         domain's durable state is unrecoverable until remount +
         restart, so every fault is a domain fault from here on. *)
      Stretch_driver.Failure "backing store crashed"
    | Mmu.Page_fault ->
      let page = Stretch.page_index (the_stretch st) fault.va in
      (match st.pages.(page) with
      | Resident _ ->
        (* Raced with another thread's fault on the same page. *)
        Stretch_driver.Success
      | Wb_pending _ ->
        if try_rescue st page then Stretch_driver.Success
        else Stretch_driver.Retry
      | Swapped -> Stretch_driver.Retry (* needs disk: worker path *)
      | Lost ->
        metric_inc st "sd.lost_faults";
        Stretch_driver.Failure "page contents lost to media error"
      | Fresh ->
        (match take_pool st with
        | Some pfn ->
          install_zero st page pfn;
          Stretch_driver.Success
        | None -> Stretch_driver.Retry))

(* Swap-exhaustion degradation, rung 2: shed pool frames the domain
   holds beyond its guarantee back to the allocator. With the bitmap
   dry the domain cannot clean dirty pages, so optimistic frames it
   may later be asked to revoke are a liability — holding onto them
   risks a missed deadline and a kill. *)
let shed_optimistic st =
  let env = st.env in
  let client = env.Stretch_driver.frames_client in
  let g = Frames.guarantee client in
  let freed = ref 0 in
  while Frames.held client > g && st.pool <> [] do
    match take_pool st with
    | Some pfn ->
      Frames.free env.Stretch_driver.frames client pfn;
      incr freed
    | None -> ()
  done;
  if !freed > 0 then begin
    st.shed <- st.shed + !freed;
    metric_add st "sd.shed_frames" !freed
  end

(* Swap-exhaustion degradation, rung 1: only victims needing no
   cleaning can yield a frame. Bounded by the resident count — each
   probe either frees a frame or re-inserts a dirty page, and a full
   cycle through the residents proves there is nothing clean left. *)
let evict_clean_scan st =
  let budget = ref (st.repl.Policy.Replacement.residents ()) in
  let found = ref None in
  while !found = None && !budget > 0 do
    decr budget;
    match evict_one ~no_clean:true st with
    | Freed pfn -> found := Some pfn
    | No_victim -> budget := 0
    | Parked | Swap_full -> ()
  done;
  !found

(* Get a frame by any means: pool, allocator, eviction — flushing the
   write-behind buffer when that is what stands between us and a free
   frame, and degrading to clean-only eviction when the blok bitmap is
   exhausted. *)
let obtain_frame st =
  let env = st.env in
  match take_pool st with
  | Some pfn -> Some pfn
  | None ->
    env.Stretch_driver.assert_idc_allowed "frames allocator";
    env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.idc_call;
    (match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn -> Some pfn
    | None ->
      let rec try_evict () =
        match evict_one st with
        | Freed pfn -> Some pfn
        | Parked ->
          if Policy.Writeback.full st.wb then begin
            flush_wb st;
            match take_pool st with
            | Some pfn -> Some pfn
            | None -> try_evict ()
          end
          else try_evict ()
        | Swap_full -> (
          (* Typed degradation ladder instead of the old abort: scan
             for a victim that needs no cleaning; failing that, drain
             the write-behind buffer (parked frames come back to the
             pool); failing that, the fault fails — a domain fault,
             not a simulator crash. *)
          match evict_clean_scan st with
          | Some pfn -> Some pfn
          | None ->
            if Policy.Writeback.pending st.wb > 0 then begin
              flush_wb st;
              take_pool st
            end
            else None)
        | No_victim ->
          if Policy.Writeback.pending st.wb > 0 then begin
            flush_wb st;
            take_pool st
          end
          else None
      in
      try_evict ())

(* A frame for read-ahead only: spare frames first, else recycle a
   victim (for a streaming reader it is clean, so this costs no disk
   write) — but never flush the write-behind buffer just to prefetch,
   and ([clean_only]) never park a dirty victim on a prefetch's
   behalf: that would sacrifice a resident page without yielding a
   frame. *)
let prefetch_frame st =
  match take_pool st with
  | Some f -> Some f
  | None ->
    (match evict_one ~clean_only:true st with Freed f -> Some f | _ -> None)

let is_swapped st p =
  p >= 0 && p < Array.length st.pages
  && (match st.pages.(p) with Swapped -> true | _ -> false)

(* Fetch left-over read-ahead candidates that are not contiguous with
   the demand run in the virtual address space but still coalesce on
   disk (a strided writer gets consecutive bloks for strided pages).
   Bounded: at most [max_extra_txns] extra transactions, spare frames
   only. *)
let max_extra_txns = 2

let fetch_extras st parent extras =
  let env = st.env in
  let extras =
    List.filter (fun p -> is_swapped st p && st.blok_of_page.(p) >= 0) extras
  in
  let by_blok =
    List.sort
      (fun a b -> compare st.blok_of_page.(a) st.blok_of_page.(b))
      extras
  in
  let chains =
    List.fold_left
      (fun acc p ->
        match acc with
        | (q :: _ as chain) :: rest
          when st.blok_of_page.(p) = st.blok_of_page.(q) + 1 ->
          (p :: chain) :: rest
        | _ -> [ p ] :: acc)
      [] by_blok
  in
  let chains = List.rev_map List.rev chains in
  let txns = ref 0 in
  List.iter
    (fun chain ->
      if !txns < max_extra_txns then begin
        (* Take pool frames for a prefix of the chain. *)
        let rec claim acc = function
          | [] -> List.rev acc
          | p :: rest ->
            (match take_pool st with
            | Some f -> claim ((p, f) :: acc) rest
            | None -> List.rev acc)
        in
        match claim [] chain with
        | [] -> ()
        | ((first, _) :: _ as got) ->
          incr txns;
          let sp = span_start st ?parent "usd.read" in
          let r =
            st.backing.Tier.Backing.read_pages
              ~page_index:st.blok_of_page.(first)
              ~npages:(List.length got)
          in
          span_finish sp;
          let lost_blok =
            match r with
            | Ok () -> fun _ -> false
            | Error (`Retired | `Crashed) -> fun _ -> true
            | Error (`Lost_pages l) -> fun b -> List.mem b l
          in
          let mapped = ref 0 in
          List.iter
            (fun (p, f) ->
              if lost_blok st.blok_of_page.(p) then begin
                (* Speculative read of a bad blok: the page is gone,
                   the frame is not. *)
                (match r with
                | Error (`Retired | `Crashed) -> ()
                | _ -> mark_lost st p);
                st.pool <- f :: st.pool
              end
              else begin
                let va = Stretch.page_base (the_stretch st) p in
                Stretch_driver.map_page env va ~pfn:f;
                st.pages.(p) <-
                  Resident
                    { pfn = f; clean_on_disk = true; dirty_latched = false;
                      via_prefetch = true };
                st.repl.Policy.Replacement.insert p;
                Frame_stack.move_to_bottom (stack st) f;
                incr mapped
              end)
            got;
          st.prefetched <- st.prefetched + !mapped;
          metric_add st "policy.prefetched" !mapped
      end)
    chains

let full st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let env = st.env in
      let page = Stretch.page_index (the_stretch st) fault.va in
      (* Bounded re-examination: blocking on disk (or a concurrent
         worker's flush) can flip the page's state under this worker;
         re-examine instead of failing. A Wb_pending page whose rescue
         misses has been flipped to Swapped at the instant its run's
         write was issued (see [flush_wb]), so the next examination
         takes the disk path. The bound is defensive. *)
      let rec resolve attempt =
        if attempt > 8 then
          Stretch_driver.Failure "fault resolution livelock"
        else if st.crashed then
          Stretch_driver.Failure "backing store crashed"
        else
      match st.pages.(page) with
      | Resident _ -> Stretch_driver.Success
      | Lost ->
        metric_inc st "sd.lost_faults";
        Stretch_driver.Failure "page contents lost to media error"
      | Wb_pending _ ->
        if try_rescue st page then Stretch_driver.Success
        else resolve (attempt + 1)
      | Fresh ->
        (match obtain_frame st with
        | Some pfn ->
          install_zero st page pfn;
          Stretch_driver.Success
        | None -> Stretch_driver.Failure "no frame obtainable")
      | Swapped ->
        Policy.Prefetch.record_fault st.pf page;
        (match obtain_frame st with
        | Some pfn ->
          env.Stretch_driver.assert_idc_allowed "USBS read";
          (* Read-ahead: extend the read to a run of consecutive
             swapped pages whose bloks are contiguous on disk, as far
             as spare frames allow — one bigger disk transaction
             instead of several small ones. The policy's prefetch
             engine proposes the candidates; [Stream] mode reproduces
             the seed's fixed-window behaviour exactly. *)
          let npages = Array.length st.pages in
          let blok0 = st.blok_of_page.(page) in
          assert (blok0 >= 0);
          let stream_mode =
            match Policy.Prefetch.mode st.pf with
            | Policy.Prefetch.Stream _ -> true
            | _ -> false
          in
          let candidates = Policy.Prefetch.plan st.pf ~page in
          let frames = ref [ (page, pfn) ] in
          let run = ref 1 in
          let extras = ref [] in
          let stop = ref false in
          List.iter
            (fun p ->
              if not !stop then
                if
                  p = page + !run
                  && p < npages
                  && is_swapped st p
                  && st.blok_of_page.(p) = blok0 + !run
                then begin
                  match prefetch_frame st with
                  | Some f ->
                    frames := (p, f) :: !frames;
                    incr run
                  | None -> stop := true
                end
                else if stream_mode then
                  (* The seed's loop stops at the first break in the
                     run; keep that bit-for-bit. *)
                  stop := true
                else if
                  is_swapped st p
                  && st.blok_of_page.(p) >= 0
                  && not (List.mem_assoc p !frames)
                  && not (List.mem p !extras)
                then extras := p :: !extras)
            candidates;
          let sp = span_start st ?parent:fault.Fault.span "usd.read" in
          let r =
            st.backing.Tier.Backing.read_pages ~page_index:blok0 ~npages:!run
          in
          span_finish sp;
          let lost_blok =
            match r with
            | Ok () -> fun _ -> false
            | Error (`Retired | `Crashed) -> fun _ -> true
            | Error (`Lost_pages l) -> fun b -> List.mem b l
          in
          let mp = span_start st ?parent:fault.Fault.span "map" in
          let mapped_extra = ref 0 in
          List.iter
            (fun (p, f) ->
              if lost_blok st.blok_of_page.(p) then begin
                (* The blok under this page of the run is gone; its
                   frame goes back to the pool. *)
                (match r with
                | Error (`Retired | `Crashed) -> ()
                | _ -> mark_lost st p);
                st.pool <- f :: st.pool
              end
              else begin
                let va = Stretch.page_base (the_stretch st) p in
                Stretch_driver.map_page env va ~pfn:f;
                st.pages.(p) <-
                  Resident
                    { pfn = f; clean_on_disk = true; dirty_latched = false;
                      via_prefetch = p <> page };
                st.repl.Policy.Replacement.insert p;
                Frame_stack.move_to_bottom (stack st) f;
                if p <> page then incr mapped_extra
              end)
            (List.rev !frames);
          span_finish mp;
          st.tick <- st.tick + 1;
          st.prefetched <- st.prefetched + !mapped_extra;
          metric_add st "policy.prefetched" !mapped_extra;
          if lost_blok blok0 then begin
            (* The demanded page itself is unrecoverable: a domain
               fault, not a simulator abort. *)
            metric_inc st "sd.lost_faults";
            match r with
            | Error `Retired ->
              Stretch_driver.Failure "backing store retired"
            | Error `Crashed ->
              Stretch_driver.Failure "backing store crashed"
            | _ -> Stretch_driver.Failure "page contents lost to media error"
          end
          else begin
            st.page_ins <- st.page_ins + 1;
            metric_inc st "policy.page_in";
            fetch_extras st fault.Fault.span (List.rev !extras);
            Stretch_driver.Success
          end
        | None -> Stretch_driver.Failure "no frame obtainable")
      in
      let outcome = resolve 0 in
      (* Swap-exhaustion degradation, rung 2 (see [shed_optimistic]):
         while the bitmap is dry, surplus pool frames are a kill risk
         under revocation — give them back promptly. *)
      if st.swap_exhausted then shed_optimistic st;
      outcome

(* Revocation: expose pool frames, then flush parked writes and evict
   residents (cleaning dirty pages first). *)
let relinquish st ~want =
  let given = ref 0 in
  let give_pool () =
    while !given < want && st.pool <> [] do
      match take_pool st with
      | Some pfn ->
        Frame_stack.move_to_top (stack st) pfn;
        incr given
      | None -> ()
    done
  in
  give_pool ();
  let continue_ = ref true in
  while !given < want && !continue_ do
    match evict_one st with
    | Freed pfn ->
      Frame_stack.move_to_top (stack st) pfn;
      incr given
    | Parked ->
      flush_wb st;
      give_pool ()
    | Swap_full -> (
      (* Dirty residents cannot be cleaned any more: give what the
         write-behind buffer still holds, then only clean victims. *)
      if Policy.Writeback.pending st.wb > 0 then begin
        flush_wb st;
        give_pool ()
      end
      else
        match evict_clean_scan st with
        | Some pfn ->
          Frame_stack.move_to_top (stack st) pfn;
          incr given
        | None -> continue_ := false)
    | No_victim ->
      if Policy.Writeback.pending st.wb > 0 then begin
        flush_wb st;
        give_pool ()
      end
      else continue_ := false
  done;
  !given

(* The advice channel (madvise-style). Dontneed evicts synchronously
   under the domain's own guarantee, so it must run in a worker/domain
   thread, not a notification handler. *)
let drop_page st p =
  match st.pages.(p) with
  | Resident r ->
    let env = st.env in
    st.repl.Policy.Replacement.remove p;
    let va = Stretch.page_base (the_stretch st) p in
    let pte = Stretch_driver.unmap_page env va in
    settle_prefetch st p (Pte.referenced pte);
    (match st.pages.(p) with
    | Resident { via_prefetch = true; _ } ->
      st.prefetch_waste <- st.prefetch_waste + 1;
      metric_inc st "policy.prefetch_waste"
    | _ -> ());
    let dirty = Pte.dirty pte || r.dirty_latched in
    let must_clean = st.forgetful || dirty || not r.clean_on_disk in
    let blok = if must_clean then blok_for st p else None in
    if must_clean && blok = None then begin
      (* Swap exhausted: the advice cannot be honoured for a dirty
         page — keep it resident rather than lose it. *)
      if Pte.dirty pte then r.dirty_latched <- true;
      Stretch_driver.map_page env va ~pfn:r.pfn;
      st.repl.Policy.Replacement.insert p
    end
    else begin
      metric_inc st "policy.evict";
      st.evictions <- st.evictions + 1;
      if must_clean then begin
        let blok = Option.get blok in
        if wb_on st then begin
          st.pages.(p) <- Wb_pending { pfn = r.pfn };
          Policy.Writeback.enqueue st.wb ~page:p ~blok ~frame:r.pfn;
          (* Keep the buffer bounded even across a huge Dontneed range
             (obtain_frame applies the same rule). *)
          if Policy.Writeback.full st.wb then flush_wb st
        end
        else begin
          let ok = write_now st ~page:p blok in
          if st.forgetful then st.pages.(p) <- Fresh
          else if ok then st.pages.(p) <- Swapped
          else mark_lost st p;
          st.pool <- r.pfn :: st.pool
        end
      end
      else begin
        st.pages.(p) <- Swapped;
        st.pool <- r.pfn :: st.pool
      end
    end
  | Fresh | Swapped | Wb_pending _ | Lost -> ()

let advise_st st adv =
  st.tick <- st.tick + 1;
  Policy.Prefetch.advise st.pf adv;
  match adv with
  | Policy.Advice.Willneed { page; npages } ->
    for p = page to page + npages - 1 do
      if p >= 0 && p < Array.length st.pages then
        match st.pages.(p) with
        | Resident _ -> st.repl.Policy.Replacement.touch p
        | _ -> ()
    done
  | Policy.Advice.Dontneed { page; npages } ->
    for p = page to page + npages - 1 do
      if p >= 0 && p < Array.length st.pages then drop_page st p
    done;
    (* Dontneed promises prompt release: flush the remainder so the
       dropped frames actually reach the pool now instead of sitting
       parked until some later memory-pressure flush. *)
    flush_wb st
  | Policy.Advice.Sequential | Policy.Advice.Random -> ()

(* Freeze seam (PR 7 stacked pagers): surrender every resident page so
   a CoW template can donate its image to the share host. Each page is
   settled first — parked writes flushed, dirty contents cleaned to
   the backing store synchronously — so the disk copy stays the
   durability floor and the surrendered frame is pure cache. Pages
   whose durable copy cannot be established (swap dry, write failed)
   stay resident and are simply not surrendered. Returns the
   [(page, pfn)] pairs given up; their frames are unmapped (Unused in
   the RamTab) but still on this client's stack, ready for
   {!Frames.transfer}. Blocking (disk I/O): worker/domain thread
   context only. *)
let surrender_st st =
  if st.forgetful then
    failwith "paged driver: cannot surrender a forgetful stretch";
  let env = st.env in
  flush_wb st;
  let out = ref [] in
  for p = 0 to Array.length st.pages - 1 do
    match st.pages.(p) with
    | Resident r ->
      let va = Stretch.page_base (the_stretch st) p in
      let pte = Stretch_driver.unmap_page env va in
      settle_prefetch st p (Pte.referenced pte);
      let dirty = Pte.dirty pte || r.dirty_latched in
      let must_clean = dirty || not r.clean_on_disk in
      let cleaned =
        (not must_clean)
        ||
        match blok_for st p with
        | Some b -> write_now st ~page:p b
        | None -> false
      in
      if cleaned then begin
        st.repl.Policy.Replacement.remove p;
        st.pages.(p) <- Swapped;
        out := (p, r.pfn) :: !out
      end
      else begin
        if Pte.dirty pte then r.dirty_latched <- true;
        Stretch_driver.map_page env va ~pfn:r.pfn
      end
    | Fresh | Swapped | Wb_pending _ | Lost -> ()
  done;
  List.rev !out

(* Adoption seam (PR 7): register a page whose frame was installed by
   an outer driver (a CoW break's private copy). The caller has
   already allocated the frame under this driver's client and mapped
   it read-write; from here on the page is managed like any other
   resident — evictable, cleanable, revocable. The copy has no disk
   image yet, so it enters dirty-latched. *)
let adopt_st st ~page ~pfn =
  if page < 0 || page >= Array.length st.pages then
    invalid_arg "Sd_paged.adopt: page out of range";
  (match st.pages.(page) with
  | Fresh | Swapped -> ()
  | Resident _ | Wb_pending _ | Lost ->
    invalid_arg "Sd_paged.adopt: page already resident");
  st.pages.(page) <-
    Resident
      { pfn; clean_on_disk = false; dirty_latched = true;
        via_prefetch = false };
  st.repl.Policy.Replacement.insert page;
  st.tick <- st.tick + 1;
  Frame_stack.move_to_bottom (stack st) pfn

type handle = {
  h_info : unit -> info;
  h_advise : Policy.Advice.t -> unit;
  h_policy : string;
  h_extent : unit -> int * int;
  h_surrender : unit -> (int * int) list;
  h_adopt : page:int -> pfn:int -> unit;
  h_obtain : unit -> int option;
}

let info h = h.h_info ()
let advise h adv = h.h_advise adv
let policy_name h = h.h_policy
let swap_extent h = h.h_extent ()
let surrender_resident h = h.h_surrender ()
let adopt h ~page ~pfn = h.h_adopt ~page ~pfn
let obtain h = h.h_obtain ()

let create ?(forgetful = false) ?(initial_frames = 0) ?(readahead = 0)
    ?(policy = Policy.Spec.default) ?(restore = []) ?backing ~swap env =
  if readahead < 0 then invalid_arg "Sd_paged.create: negative readahead";
  let backing =
    match backing with Some b -> b | None -> Tier.Backing.of_sfs swap
  in
  let spec = Policy.Spec.with_readahead policy readahead in
  let tick_ref = ref (fun () -> 0) in
  let st =
    { env; swap; backing; forgetful; spec;
      repl = Policy.Spec.make_replacement spec ~now:(fun () -> !tick_ref ());
      pf = Policy.Spec.make_prefetch spec;
      wb = Policy.Writeback.create ~write:(fun ~blok:_ ~nbloks:_ -> ()) ();
      bitmap =
        Bloks.create
          ~nbloks:(max 1 (backing.Tier.Backing.page_capacity ()));
      stretch = None; pages = [||]; blok_of_page = [||]; pool = [];
      tick = 0; page_ins = 0; page_outs = 0; demand_zeros = 0; evictions = 0;
      prefetched = 0; prefetch_hits = 0; prefetch_waste = 0; rescues = 0;
      lost_pages = 0; rebloks = 0; shed = 0; degraded_sync = false;
      swap_exhausted = false; restore; retiring = Hashtbl.create 7;
      restored = 0; crashed = false }
  in
  tick_ref := (fun () -> st.tick);
  st.wb <-
    Policy.Writeback.create ~max_batch:spec.Policy.Spec.wb_batch
      ~write:(fun ~blok ~nbloks ->
        let sp = span_start st "usd.write" in
        let journaled = st.backing.Tier.Backing.journaled () in
        let run_pages =
          if journaled then pages_for_run st ~blok ~nbloks else []
        in
        let r =
          if journaled then
            st.backing.Tier.Backing.write_pages_commit ~page_index:blok
              ~npages:nbloks ~pages:run_pages
              ~retire:(retire_for st (List.map fst run_pages))
          else
            st.backing.Tier.Backing.write_pages ~page_index:blok
              ~npages:nbloks
        in
        span_finish sp;
        (match r with
        | Ok () when journaled -> release_retired st (List.map fst run_pages)
        | Error `Crashed ->
          (* Torn on the platter mid-flush: this rewrite's Commit
             record never landed, so on restart the run's pages still
             answer to their last committed slots. The domain itself
             is dead — the crashed latch fails its next fault. *)
          note_crashed st
        | _ -> ());
        let lost =
          match r with
          | Ok () -> []
          | Error (`Retired | `Crashed) -> []
          | Error (`Lost_pages l) -> l
        in
        (match lost with
        | [] -> ()
        | lost ->
          (* Parked data gone: by flush time the frames are committed
             for release, so no rewrite source remains. Mark the
             owning pages, answer each lost slot's final error in the
             accounting, and fall back to synchronous write-through —
             write-behind has shown it can lose data here. *)
          let n = Array.length st.blok_of_page in
          List.iter
            (fun bad ->
              Inject.note_killed "sd.wb";
              let rec find i =
                if i >= n then ()
                else if st.blok_of_page.(i) = bad then (
                  match st.pages.(i) with
                  | Swapped -> mark_lost st i
                  | _ -> ())
                else find (i + 1)
              in
              find 0)
            lost;
          if not st.degraded_sync then begin
            st.degraded_sync <- true;
            metric_inc st "sd.wb_degraded"
          end);
        st.page_outs <- st.page_outs + nbloks - List.length lost;
        metric_add st "policy.page_out" (nbloks - List.length lost);
        metric_inc st "policy.wb_flush")
      ();
  let shortfall = ref 0 in
  for _ = 1 to initial_frames do
    match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn -> st.pool <- pfn :: st.pool
    | None -> incr shortfall
  done;
  if !shortfall > 0 then
    Error (Printf.sprintf "could not preallocate %d frames" !shortfall)
  else
    let pname = Policy.Spec.name spec in
    (* Non-default backends show up in the driver name; the default
       ("sfs") keeps every seed report byte-identical. *)
    let bsuffix =
      if backing.Tier.Backing.label = "sfs" then ""
      else "@" ^ backing.Tier.Backing.label
    in
    Ok
      ( { Stretch_driver.name =
            (if forgetful then
               Printf.sprintf "paged(forgetful,%s%s)" pname bsuffix
             else Printf.sprintf "paged(%s%s)" pname bsuffix);
          bind = bind st;
          fast = fast st;
          full = full st;
          relinquish = relinquish st;
          resident_pages =
            (fun () -> st.repl.Policy.Replacement.residents ());
          free_frames = (fun () -> List.length st.pool) },
        { h_info =
            (fun () ->
              { page_ins = st.page_ins; page_outs = st.page_outs;
                demand_zeros = st.demand_zeros; evictions = st.evictions;
                prefetched = st.prefetched;
                prefetch_hits = st.prefetch_hits;
                prefetch_waste = st.prefetch_waste;
                wb_flushes = Policy.Writeback.flushes st.wb;
                rescues = st.rescues; lost_pages = st.lost_pages;
                rebloks = st.rebloks; shed_frames = st.shed;
                restored_pages = st.restored;
                wb_degraded = st.degraded_sync;
                swap_exhausted = st.swap_exhausted;
                crashed = st.crashed });
          h_advise = advise_st st;
          h_policy = pname;
          h_extent = (fun () -> backing.Tier.Backing.extent ());
          h_surrender = (fun () -> surrender_st st);
          h_adopt = (fun ~page ~pfn -> adopt_st st ~page ~pfn);
          h_obtain = (fun () -> obtain_frame st) } )
