open Hw

type pstate =
  | Fresh  (* no contents yet: demand-zero on touch *)
  | Resident of { pfn : int; clean_on_disk : bool }
  | Swapped

type info = {
  page_ins : int;
  page_outs : int;
  demand_zeros : int;
  evictions : int;
  prefetched : int;
}

type state = {
  env : Stretch_driver.env;
  swap : Usbs.Sfs.swapfile;
  forgetful : bool;
  readahead : int;
  bitmap : Bloks.t;
  mutable stretch : Stretch.t option;
  mutable pages : pstate array;       (* per page of the stretch *)
  mutable blok_of_page : int array;   (* -1 = none assigned *)
  mutable pool : int list;            (* owned, unmapped frames *)
  resident_fifo : int Queue.t;        (* page indices, map order *)
  mutable page_ins : int;
  mutable page_outs : int;
  mutable demand_zeros : int;
  mutable evictions : int;
  mutable prefetched : int;
}

let stack st = Frames.frame_stack st.env.Stretch_driver.frames_client

(* Span helpers: driver code always runs on some domain's process, so
   the current process's simulation clock is the right one. *)
let span_start st ?parent sname =
  if !Obs.enabled then
    Some
      (Obs.Span.start
         ~now:(Engine.Sim.now (Engine.Proc.current_sim ()))
         ~label:st.env.Stretch_driver.domain_name ?parent sname)
  else None

let span_finish = function
  | Some s -> Obs.Span.finish ~now:(Engine.Sim.now (Engine.Proc.current_sim ())) s
  | None -> ()

let the_stretch st =
  match st.stretch with
  | Some s -> s
  | None -> failwith "paged driver: no stretch bound"

let take_pool st =
  match st.pool with
  | [] -> None
  | pfn :: rest ->
    st.pool <- rest;
    Some pfn

let bind st (s : Stretch.t) =
  if st.stretch <> None then
    failwith "paged driver: already bound to a stretch";
  let npages = Stretch.npages s in
  if Usbs.Sfs.page_capacity st.swap < npages then
    failwith
      (Printf.sprintf
         "paged driver: swap too small (%d pages) for stretch (%d pages)"
         (Usbs.Sfs.page_capacity st.swap) npages);
  st.stretch <- Some s;
  st.pages <- Array.make npages Fresh;
  st.blok_of_page <- Array.make npages (-1)

let owns_fault st (fault : Fault.t) =
  match (fault.sid, st.stretch) with
  | Some sid, Some s -> s.Stretch.sid = sid
  | _ -> false

(* Map [page] into [pfn] as a demand-zeroed page. *)
let install_zero st page pfn =
  let env = st.env in
  let va = Stretch.page_base (the_stretch st) page in
  Stretch_driver.map_page env va ~pfn;
  env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.page_zero;
  st.pages.(page) <- Resident { pfn; clean_on_disk = false };
  Queue.add page st.resident_fifo;
  Frame_stack.move_to_bottom (stack st) pfn;
  st.demand_zeros <- st.demand_zeros + 1

(* Ensure the page has a blok assigned (first-fit from the bitmap). *)
let blok_for st page =
  if st.blok_of_page.(page) >= 0 then st.blok_of_page.(page)
  else
    match Bloks.alloc st.bitmap with
    | Some b ->
      st.blok_of_page.(page) <- b;
      b
    | None -> failwith "paged driver: swap space exhausted"

(* Evict the oldest resident page, cleaning it to the USBS first if
   needed, and hand back its frame. Blocking (disk I/O): worker-thread
   context only. *)
let evict_one st =
  let env = st.env in
  match Queue.take_opt st.resident_fifo with
  | None -> None
  | Some victim ->
    (match st.pages.(victim) with
    | Resident { pfn; clean_on_disk } ->
      let va = Stretch.page_base (the_stretch st) victim in
      let pte = Stretch_driver.unmap_page env va in
      let dirty = Pte.dirty pte in
      let must_clean = st.forgetful || dirty || not clean_on_disk in
      if must_clean then begin
        env.Stretch_driver.assert_idc_allowed "USBS write";
        let blok = blok_for st victim in
        let sp = span_start st "usd.write" in
        Usbs.Sfs.write_page st.swap ~page_index:blok;
        span_finish sp;
        st.page_outs <- st.page_outs + 1
      end;
      st.evictions <- st.evictions + 1;
      (* The paging-out experiment's driver forgets the disk copy. *)
      if st.forgetful then st.pages.(victim) <- Fresh
      else st.pages.(victim) <- Swapped;
      Some pfn
    | Fresh | Swapped ->
      (* Stale FIFO entry (page already evicted via revocation). *)
      None)

let fast st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let page = Stretch.page_index (the_stretch st) fault.va in
      (match st.pages.(page) with
      | Resident _ ->
        (* Raced with another thread's fault on the same page. *)
        Stretch_driver.Success
      | Swapped -> Stretch_driver.Retry (* needs disk: worker path *)
      | Fresh ->
        (match take_pool st with
        | Some pfn ->
          install_zero st page pfn;
          Stretch_driver.Success
        | None -> Stretch_driver.Retry))

(* Get a frame by any means: pool, allocator, or eviction. *)
let obtain_frame st =
  let env = st.env in
  match take_pool st with
  | Some pfn -> Some pfn
  | None ->
    env.Stretch_driver.assert_idc_allowed "frames allocator";
    env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.idc_call;
    (match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn -> Some pfn
    | None ->
      let rec try_evict () =
        match evict_one st with
        | Some pfn -> Some pfn
        | None -> if Queue.is_empty st.resident_fifo then None else try_evict ()
      in
      try_evict ())

let full st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let env = st.env in
      let page = Stretch.page_index (the_stretch st) fault.va in
      (match st.pages.(page) with
      | Resident _ -> Stretch_driver.Success
      | Fresh ->
        (match obtain_frame st with
        | Some pfn ->
          install_zero st page pfn;
          Stretch_driver.Success
        | None -> Stretch_driver.Failure "no frame obtainable")
      | Swapped ->
        (match obtain_frame st with
        | Some pfn ->
          env.Stretch_driver.assert_idc_allowed "USBS read";
          (* Stream paging: extend the read to a run of consecutive
             swapped pages whose bloks are contiguous on disk, as far
             as spare frames allow — one bigger disk transaction
             instead of several small ones. *)
          let npages = Array.length st.pages in
          let blok0 = st.blok_of_page.(page) in
          assert (blok0 >= 0);
          let frames = ref [ (page, pfn) ] in
          let run = ref 1 in
          let continue_ = ref (st.readahead > 0) in
          while !continue_ && !run <= st.readahead do
            let p = page + !run in
            if
              p < npages
              && st.pages.(p) = Swapped
              && st.blok_of_page.(p) = blok0 + !run
            then begin
              (* Spare frames first, else recycle the oldest resident
                 (for a streaming reader it is clean, so this costs no
                 disk write; FIFO order keeps the current run safe). *)
              let frame =
                match take_pool st with
                | Some f -> Some f
                | None -> evict_one st
              in
              match frame with
              | Some f ->
                frames := (p, f) :: !frames;
                incr run
              | None -> continue_ := false
            end
            else continue_ := false
          done;
          let sp = span_start st ?parent:fault.Fault.span "usd.read" in
          Usbs.Sfs.read_pages st.swap ~page_index:blok0 ~npages:!run;
          span_finish sp;
          let mp = span_start st ?parent:fault.Fault.span "map" in
          List.iter
            (fun (p, f) ->
              let va = Stretch.page_base (the_stretch st) p in
              Stretch_driver.map_page env va ~pfn:f;
              st.pages.(p) <- Resident { pfn = f; clean_on_disk = true };
              Queue.add p st.resident_fifo;
              Frame_stack.move_to_bottom (stack st) f)
            (List.rev !frames);
          span_finish mp;
          st.page_ins <- st.page_ins + !run;
          st.prefetched <- st.prefetched + (!run - 1);
          Stretch_driver.Success
        | None -> Stretch_driver.Failure "no frame obtainable"))

(* Revocation: expose pool frames, then clean and evict residents. *)
let relinquish st ~want =
  let given = ref 0 in
  while !given < want && st.pool <> [] do
    match take_pool st with
    | Some pfn ->
      Frame_stack.move_to_top (stack st) pfn;
      incr given
    | None -> ()
  done;
  let continue_ = ref true in
  while !given < want && !continue_ do
    match evict_one st with
    | Some pfn ->
      Frame_stack.move_to_top (stack st) pfn;
      incr given
    | None -> if Queue.is_empty st.resident_fifo then continue_ := false
  done;
  !given

let create ?(forgetful = false) ?(initial_frames = 0) ?(readahead = 0) ~swap
    env =
  if readahead < 0 then invalid_arg "Sd_paged.create: negative readahead";
  let st =
    { env; swap; forgetful; readahead;
      bitmap = Bloks.create ~nbloks:(max 1 (Usbs.Sfs.page_capacity swap));
      stretch = None; pages = [||]; blok_of_page = [||]; pool = [];
      resident_fifo = Queue.create (); page_ins = 0; page_outs = 0;
      demand_zeros = 0; evictions = 0; prefetched = 0 }
  in
  let shortfall = ref 0 in
  for _ = 1 to initial_frames do
    match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn -> st.pool <- pfn :: st.pool
    | None -> incr shortfall
  done;
  if !shortfall > 0 then
    Error (Printf.sprintf "could not preallocate %d frames" !shortfall)
  else
    Ok
      ( { Stretch_driver.name =
            (if forgetful then "paged(forgetful)" else "paged");
          bind = bind st;
          fast = fast st;
          full = full st;
          relinquish = relinquish st;
          resident_pages = (fun () -> Queue.length st.resident_fifo);
          free_frames = (fun () -> List.length st.pool) },
        fun () ->
          { page_ins = st.page_ins; page_outs = st.page_outs;
            demand_zeros = st.demand_zeros; evictions = st.evictions;
            prefetched = st.prefetched } )
