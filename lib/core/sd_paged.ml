open Hw

(* Residency state of one page of the stretch.

   [dirty_latched] accumulates dirty bits lost to reference-sampling:
   policies that clear the referenced bit do so by unmap+remap, which
   discards the PTE's dirty bit, so it is latched here. [via_prefetch]
   marks a page brought in by read-ahead whose first reference has not
   been observed yet — resolved to a hit or a waste at the first
   reference-sample or at eviction. *)
type pstate =
  | Fresh  (* no contents yet: demand-zero on touch *)
  | Resident of {
      pfn : int;
      clean_on_disk : bool;
      mutable dirty_latched : bool;
      mutable via_prefetch : bool;
    }
  | Wb_pending of { pfn : int }
      (* evicted dirty, parked in the write-behind buffer: the frame
         still holds the only up-to-date copy until the flush *)
  | Swapped

type info = {
  page_ins : int;
  page_outs : int;
  demand_zeros : int;
  evictions : int;
  prefetched : int;
  prefetch_hits : int;
  prefetch_waste : int;
  wb_flushes : int;
  rescues : int;
}

type state = {
  env : Stretch_driver.env;
  swap : Usbs.Sfs.swapfile;
  forgetful : bool;
  spec : Policy.Spec.t;
  repl : Policy.Replacement.t;
  pf : Policy.Prefetch.t;
  mutable wb : Policy.Writeback.t;
  bitmap : Bloks.t;
  mutable stretch : Stretch.t option;
  mutable pages : pstate array;       (* per page of the stretch *)
  mutable blok_of_page : int array;   (* -1 = none assigned *)
  mutable pool : int list;            (* owned, unmapped frames *)
  mutable tick : int;                 (* per-domain virtual time *)
  mutable page_ins : int;
  mutable page_outs : int;
  mutable demand_zeros : int;
  mutable evictions : int;
  mutable prefetched : int;
  mutable prefetch_hits : int;
  mutable prefetch_waste : int;
  mutable rescues : int;
}

let stack st = Frames.frame_stack st.env.Stretch_driver.frames_client

(* Span helpers: driver code always runs on some domain's process, so
   the current process's simulation clock is the right one. *)
let span_start st ?parent sname =
  if !Obs.enabled then
    Some
      (Obs.Span.start
         ~now:(Engine.Sim.now (Engine.Proc.current_sim ()))
         ~label:st.env.Stretch_driver.domain_name ?parent sname)
  else None

let span_finish = function
  | Some s -> Obs.Span.finish ~now:(Engine.Sim.now (Engine.Proc.current_sim ())) s
  | None -> ()

let metric_inc st name =
  if !Obs.enabled then
    Obs.Metrics.inc ~label:st.env.Stretch_driver.domain_name name

let metric_add st name n =
  if n > 0 && !Obs.enabled then
    Obs.Metrics.add ~label:st.env.Stretch_driver.domain_name name n

let the_stretch st =
  match st.stretch with
  | Some s -> s
  | None -> failwith "paged driver: no stretch bound"

let take_pool st =
  match st.pool with
  | [] -> None
  | pfn :: rest ->
    st.pool <- rest;
    Some pfn

let bind st (s : Stretch.t) =
  if st.stretch <> None then
    failwith "paged driver: already bound to a stretch";
  let npages = Stretch.npages s in
  if Usbs.Sfs.page_capacity st.swap < npages then
    failwith
      (Printf.sprintf
         "paged driver: swap too small (%d pages) for stretch (%d pages)"
         (Usbs.Sfs.page_capacity st.swap) npages);
  st.stretch <- Some s;
  st.pages <- Array.make npages Fresh;
  st.blok_of_page <- Array.make npages (-1)

let owns_fault st (fault : Fault.t) =
  match (fault.sid, st.stretch) with
  | Some sid, Some s -> s.Stretch.sid = sid
  | _ -> false

(* A prefetched page's fate is decided at the first point we observe
   its referenced bit (a reference-sampling pass or its eviction). *)
let settle_prefetch st p referenced =
  match st.pages.(p) with
  | Resident r when r.via_prefetch && referenced ->
    r.via_prefetch <- false;
    st.prefetch_hits <- st.prefetch_hits + 1;
    metric_inc st "policy.prefetch_hit"
  | _ -> ()

(* The window through which replacement policies see the hardware:
   referenced bits live in the PTEs; clearing one is the user-level
   unmap+remap dance (which re-arms FOR/FOW), charged to the domain. *)
let make_probe st =
  let env = st.env in
  { Policy.Replacement.resident =
      (fun p ->
        match st.pages.(p) with Resident _ -> true | _ -> false);
    referenced =
      (fun p ->
        match st.pages.(p) with
        | Resident _ ->
          let va = Stretch.page_base (the_stretch st) p in
          let pte, cost = Translation.trans env.Stretch_driver.translation ~va in
          env.Stretch_driver.consume_cpu cost;
          Pte.referenced pte
        | _ -> false);
    clear_referenced =
      (fun p ->
        match st.pages.(p) with
        | Resident r ->
          let va = Stretch.page_base (the_stretch st) p in
          let pte = Stretch_driver.unmap_page env va in
          if Pte.dirty pte then r.dirty_latched <- true;
          settle_prefetch st p (Pte.referenced pte);
          Stretch_driver.map_page env va ~pfn:r.pfn
        | _ -> ()) }

(* Map [page] into [pfn] as a demand-zeroed page. *)
let install_zero st page pfn =
  let env = st.env in
  let va = Stretch.page_base (the_stretch st) page in
  Stretch_driver.map_page env va ~pfn;
  env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.page_zero;
  st.pages.(page) <-
    Resident
      { pfn; clean_on_disk = false; dirty_latched = false;
        via_prefetch = false };
  st.repl.Policy.Replacement.insert page;
  st.tick <- st.tick + 1;
  Frame_stack.move_to_bottom (stack st) pfn;
  st.demand_zeros <- st.demand_zeros + 1

(* Ensure the page has a blok assigned (first-fit from the bitmap). *)
let blok_for st page =
  if st.blok_of_page.(page) >= 0 then st.blok_of_page.(page)
  else
    match Bloks.alloc st.bitmap with
    | Some b ->
      st.blok_of_page.(page) <- b;
      b
    | None -> failwith "paged driver: swap space exhausted"

let write_now st blok =
  st.env.Stretch_driver.assert_idc_allowed "USBS write";
  let sp = span_start st "usd.write" in
  Usbs.Sfs.write_page st.swap ~page_index:blok;
  span_finish sp;
  st.page_outs <- st.page_outs + 1;
  metric_inc st "policy.page_out"

(* Issue every parked write-behind entry (coalesced by the buffer into
   contiguous USD transactions) and return the freed frames to the
   pool. A page's state flips to Swapped at the commit point — the
   instant its run's write is issued, not when the whole flush
   returns — so pages in runs not yet written stay Wb_pending and
   rescuable while earlier runs block on disk. Flipping at issue time
   is sound because one client's USD requests are served FIFO: a fault
   that then reads the page queues its read behind the in-flight write
   and cannot observe stale disk contents. The frame returns to the
   pool only once its run's write has completed (it is pinned while
   the "DMA" is in flight). Blocking (disk I/O): worker-thread context
   only; safe to run concurrently from the fault and revocation
   workers (each flush iteration claims a disjoint run). *)
let flush_wb st =
  if Policy.Writeback.pending st.wb > 0 then begin
    st.env.Stretch_driver.assert_idc_allowed "USBS write";
    ignore
      (Policy.Writeback.flush st.wb
         ~commit:(fun ~page ->
           st.pages.(page) <- (if st.forgetful then Fresh else Swapped))
         ~release:(fun ~page:_ ~frame -> st.pool <- frame :: st.pool))
  end

type evicted = No_victim | Freed of int | Parked

(* Evict the policy's victim, cleaning it to the USBS first if needed
   (immediately, or by parking it in the write-behind buffer), and
   hand back its frame if one came free. [clean_only] is the prefetch
   caller's flag: a victim that would only be *parked* (write-behind
   enabled, needs cleaning) yields no frame now, so eviction would
   cost a resident page for nothing — pre-check its dirtiness
   non-destructively and leave it resident instead. Blocking (disk
   I/O): worker-thread context only. *)
let evict_one ?(clean_only = false) st =
  let env = st.env in
  match st.repl.Policy.Replacement.victim (make_probe st) with
  | None -> No_victim
  | Some victim ->
    (match st.pages.(victim) with
    | Resident r
      when clean_only
           && Policy.Writeback.enabled st.wb
           && (st.forgetful
              || r.dirty_latched
              || (not r.clean_on_disk)
              ||
              let va = Stretch.page_base (the_stretch st) victim in
              let pte, cost =
                Translation.trans env.Stretch_driver.translation ~va
              in
              env.Stretch_driver.consume_cpu cost;
              Pte.dirty pte) ->
      (* Re-insert: the policy sees the page as freshly mapped — cheap
         protection for a page we just chose not to lose. *)
      st.repl.Policy.Replacement.insert victim;
      No_victim
    | Resident r ->
      let va = Stretch.page_base (the_stretch st) victim in
      let pte = Stretch_driver.unmap_page env va in
      settle_prefetch st victim (Pte.referenced pte);
      (match st.pages.(victim) with
      | Resident { via_prefetch = true; _ } ->
        st.prefetch_waste <- st.prefetch_waste + 1;
        metric_inc st "policy.prefetch_waste"
      | _ -> ());
      let dirty = Pte.dirty pte || r.dirty_latched in
      let must_clean = st.forgetful || dirty || not r.clean_on_disk in
      metric_inc st "policy.evict";
      if must_clean then begin
        let blok = blok_for st victim in
        if Policy.Writeback.enabled st.wb then begin
          st.evictions <- st.evictions + 1;
          st.pages.(victim) <- Wb_pending { pfn = r.pfn };
          Policy.Writeback.enqueue st.wb ~page:victim ~blok ~frame:r.pfn;
          Parked
        end
        else begin
          write_now st blok;
          st.evictions <- st.evictions + 1;
          (* The paging-out experiment's driver forgets the disk copy. *)
          st.pages.(victim) <- (if st.forgetful then Fresh else Swapped);
          Freed r.pfn
        end
      end
      else begin
        st.evictions <- st.evictions + 1;
        st.pages.(victim) <- Swapped;
        Freed r.pfn
      end
    | Fresh | Swapped | Wb_pending _ ->
      (* The policy's probe guarantees victims are resident. *)
      No_victim)

(* Read-your-writes fast path: a fault on a parked page cancels the
   pending write and remaps the very frame that holds the data — no
   disk I/O. The page is still dirty, so it stays clean_on_disk:false
   and will be cleaned again on its next eviction. *)
let try_rescue st page =
  match st.pages.(page) with
  | Wb_pending { pfn } ->
    (match Policy.Writeback.rescue st.wb ~page with
    | Some _ ->
      let va = Stretch.page_base (the_stretch st) page in
      Stretch_driver.map_page st.env va ~pfn;
      st.pages.(page) <-
        Resident
          { pfn; clean_on_disk = false; dirty_latched = true;
            via_prefetch = false };
      st.repl.Policy.Replacement.insert page;
      st.tick <- st.tick + 1;
      Frame_stack.move_to_bottom (stack st) pfn;
      st.rescues <- st.rescues + 1;
      metric_inc st "policy.rescue";
      true
    | None -> false)
  | _ -> false

let fast st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let page = Stretch.page_index (the_stretch st) fault.va in
      (match st.pages.(page) with
      | Resident _ ->
        (* Raced with another thread's fault on the same page. *)
        Stretch_driver.Success
      | Wb_pending _ ->
        if try_rescue st page then Stretch_driver.Success
        else Stretch_driver.Retry
      | Swapped -> Stretch_driver.Retry (* needs disk: worker path *)
      | Fresh ->
        (match take_pool st with
        | Some pfn ->
          install_zero st page pfn;
          Stretch_driver.Success
        | None -> Stretch_driver.Retry))

(* Get a frame by any means: pool, allocator, eviction — flushing the
   write-behind buffer when that is what stands between us and a free
   frame. *)
let obtain_frame st =
  let env = st.env in
  match take_pool st with
  | Some pfn -> Some pfn
  | None ->
    env.Stretch_driver.assert_idc_allowed "frames allocator";
    env.Stretch_driver.consume_cpu env.Stretch_driver.cost.Cost.idc_call;
    (match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn -> Some pfn
    | None ->
      let rec try_evict () =
        match evict_one st with
        | Freed pfn -> Some pfn
        | Parked ->
          if Policy.Writeback.full st.wb then begin
            flush_wb st;
            match take_pool st with
            | Some pfn -> Some pfn
            | None -> try_evict ()
          end
          else try_evict ()
        | No_victim ->
          if Policy.Writeback.pending st.wb > 0 then begin
            flush_wb st;
            take_pool st
          end
          else None
      in
      try_evict ())

(* A frame for read-ahead only: spare frames first, else recycle a
   victim (for a streaming reader it is clean, so this costs no disk
   write) — but never flush the write-behind buffer just to prefetch,
   and ([clean_only]) never park a dirty victim on a prefetch's
   behalf: that would sacrifice a resident page without yielding a
   frame. *)
let prefetch_frame st =
  match take_pool st with
  | Some f -> Some f
  | None ->
    (match evict_one ~clean_only:true st with Freed f -> Some f | _ -> None)

let is_swapped st p =
  p >= 0 && p < Array.length st.pages
  && (match st.pages.(p) with Swapped -> true | _ -> false)

(* Fetch left-over read-ahead candidates that are not contiguous with
   the demand run in the virtual address space but still coalesce on
   disk (a strided writer gets consecutive bloks for strided pages).
   Bounded: at most [max_extra_txns] extra transactions, spare frames
   only. *)
let max_extra_txns = 2

let fetch_extras st parent extras =
  let env = st.env in
  let extras =
    List.filter (fun p -> is_swapped st p && st.blok_of_page.(p) >= 0) extras
  in
  let by_blok =
    List.sort
      (fun a b -> compare st.blok_of_page.(a) st.blok_of_page.(b))
      extras
  in
  let chains =
    List.fold_left
      (fun acc p ->
        match acc with
        | (q :: _ as chain) :: rest
          when st.blok_of_page.(p) = st.blok_of_page.(q) + 1 ->
          (p :: chain) :: rest
        | _ -> [ p ] :: acc)
      [] by_blok
  in
  let chains = List.rev_map List.rev chains in
  let txns = ref 0 in
  List.iter
    (fun chain ->
      if !txns < max_extra_txns then begin
        (* Take pool frames for a prefix of the chain. *)
        let rec claim acc = function
          | [] -> List.rev acc
          | p :: rest ->
            (match take_pool st with
            | Some f -> claim ((p, f) :: acc) rest
            | None -> List.rev acc)
        in
        match claim [] chain with
        | [] -> ()
        | ((first, _) :: _ as got) ->
          incr txns;
          let sp = span_start st ?parent "usd.read" in
          Usbs.Sfs.read_pages st.swap
            ~page_index:st.blok_of_page.(first)
            ~npages:(List.length got);
          span_finish sp;
          List.iter
            (fun (p, f) ->
              let va = Stretch.page_base (the_stretch st) p in
              Stretch_driver.map_page env va ~pfn:f;
              st.pages.(p) <-
                Resident
                  { pfn = f; clean_on_disk = true; dirty_latched = false;
                    via_prefetch = true };
              st.repl.Policy.Replacement.insert p;
              Frame_stack.move_to_bottom (stack st) f)
            got;
          st.prefetched <- st.prefetched + List.length got;
          metric_add st "policy.prefetched" (List.length got)
      end)
    chains

let full st (fault : Fault.t) =
  if not (owns_fault st fault) then
    Stretch_driver.Failure "fault outside bound stretch"
  else
    match fault.kind with
    | Mmu.Access_violation -> Stretch_driver.Failure "access violation"
    | Mmu.Unallocated -> Stretch_driver.Failure "unallocated address"
    | Mmu.Page_fault ->
      let env = st.env in
      let page = Stretch.page_index (the_stretch st) fault.va in
      (match st.pages.(page) with
      | Resident _ -> Stretch_driver.Success
      | Wb_pending _ ->
        (* A Wb_pending page is parked — a flush flips it to Swapped
           at the very instant its write is issued (see [flush_wb]) —
           so the rescue always succeeds; the failure arm is a
           driver-invariant check, not a reachable outcome. *)
        if try_rescue st page then Stretch_driver.Success
        else Stretch_driver.Failure "write-behind entry lost"
      | Fresh ->
        (match obtain_frame st with
        | Some pfn ->
          install_zero st page pfn;
          Stretch_driver.Success
        | None -> Stretch_driver.Failure "no frame obtainable")
      | Swapped ->
        Policy.Prefetch.record_fault st.pf page;
        (match obtain_frame st with
        | Some pfn ->
          env.Stretch_driver.assert_idc_allowed "USBS read";
          (* Read-ahead: extend the read to a run of consecutive
             swapped pages whose bloks are contiguous on disk, as far
             as spare frames allow — one bigger disk transaction
             instead of several small ones. The policy's prefetch
             engine proposes the candidates; [Stream] mode reproduces
             the seed's fixed-window behaviour exactly. *)
          let npages = Array.length st.pages in
          let blok0 = st.blok_of_page.(page) in
          assert (blok0 >= 0);
          let stream_mode =
            match Policy.Prefetch.mode st.pf with
            | Policy.Prefetch.Stream _ -> true
            | _ -> false
          in
          let candidates = Policy.Prefetch.plan st.pf ~page in
          let frames = ref [ (page, pfn) ] in
          let run = ref 1 in
          let extras = ref [] in
          let stop = ref false in
          List.iter
            (fun p ->
              if not !stop then
                if
                  p = page + !run
                  && p < npages
                  && is_swapped st p
                  && st.blok_of_page.(p) = blok0 + !run
                then begin
                  match prefetch_frame st with
                  | Some f ->
                    frames := (p, f) :: !frames;
                    incr run
                  | None -> stop := true
                end
                else if stream_mode then
                  (* The seed's loop stops at the first break in the
                     run; keep that bit-for-bit. *)
                  stop := true
                else if
                  is_swapped st p
                  && st.blok_of_page.(p) >= 0
                  && not (List.mem_assoc p !frames)
                  && not (List.mem p !extras)
                then extras := p :: !extras)
            candidates;
          let sp = span_start st ?parent:fault.Fault.span "usd.read" in
          Usbs.Sfs.read_pages st.swap ~page_index:blok0 ~npages:!run;
          span_finish sp;
          let mp = span_start st ?parent:fault.Fault.span "map" in
          List.iter
            (fun (p, f) ->
              let va = Stretch.page_base (the_stretch st) p in
              Stretch_driver.map_page env va ~pfn:f;
              st.pages.(p) <-
                Resident
                  { pfn = f; clean_on_disk = true; dirty_latched = false;
                    via_prefetch = p <> page };
              st.repl.Policy.Replacement.insert p;
              Frame_stack.move_to_bottom (stack st) f)
            (List.rev !frames);
          span_finish mp;
          st.tick <- st.tick + 1;
          st.page_ins <- st.page_ins + 1;
          st.prefetched <- st.prefetched + (!run - 1);
          metric_inc st "policy.page_in";
          metric_add st "policy.prefetched" (!run - 1);
          fetch_extras st fault.Fault.span (List.rev !extras);
          Stretch_driver.Success
        | None -> Stretch_driver.Failure "no frame obtainable"))

(* Revocation: expose pool frames, then flush parked writes and evict
   residents (cleaning dirty pages first). *)
let relinquish st ~want =
  let given = ref 0 in
  let give_pool () =
    while !given < want && st.pool <> [] do
      match take_pool st with
      | Some pfn ->
        Frame_stack.move_to_top (stack st) pfn;
        incr given
      | None -> ()
    done
  in
  give_pool ();
  let continue_ = ref true in
  while !given < want && !continue_ do
    match evict_one st with
    | Freed pfn ->
      Frame_stack.move_to_top (stack st) pfn;
      incr given
    | Parked ->
      flush_wb st;
      give_pool ()
    | No_victim ->
      if Policy.Writeback.pending st.wb > 0 then begin
        flush_wb st;
        give_pool ()
      end
      else continue_ := false
  done;
  !given

(* The advice channel (madvise-style). Dontneed evicts synchronously
   under the domain's own guarantee, so it must run in a worker/domain
   thread, not a notification handler. *)
let drop_page st p =
  match st.pages.(p) with
  | Resident r ->
    let env = st.env in
    st.repl.Policy.Replacement.remove p;
    let va = Stretch.page_base (the_stretch st) p in
    let pte = Stretch_driver.unmap_page env va in
    settle_prefetch st p (Pte.referenced pte);
    (match st.pages.(p) with
    | Resident { via_prefetch = true; _ } ->
      st.prefetch_waste <- st.prefetch_waste + 1;
      metric_inc st "policy.prefetch_waste"
    | _ -> ());
    let dirty = Pte.dirty pte || r.dirty_latched in
    let must_clean = st.forgetful || dirty || not r.clean_on_disk in
    metric_inc st "policy.evict";
    st.evictions <- st.evictions + 1;
    if must_clean then begin
      let blok = blok_for st p in
      if Policy.Writeback.enabled st.wb then begin
        st.pages.(p) <- Wb_pending { pfn = r.pfn };
        Policy.Writeback.enqueue st.wb ~page:p ~blok ~frame:r.pfn;
        (* Keep the buffer bounded even across a huge Dontneed range
           (obtain_frame applies the same rule). *)
        if Policy.Writeback.full st.wb then flush_wb st
      end
      else begin
        write_now st blok;
        st.pages.(p) <- (if st.forgetful then Fresh else Swapped);
        st.pool <- r.pfn :: st.pool
      end
    end
    else begin
      st.pages.(p) <- Swapped;
      st.pool <- r.pfn :: st.pool
    end
  | Fresh | Swapped | Wb_pending _ -> ()

let advise_st st adv =
  st.tick <- st.tick + 1;
  Policy.Prefetch.advise st.pf adv;
  match adv with
  | Policy.Advice.Willneed { page; npages } ->
    for p = page to page + npages - 1 do
      if p >= 0 && p < Array.length st.pages then
        match st.pages.(p) with
        | Resident _ -> st.repl.Policy.Replacement.touch p
        | _ -> ()
    done
  | Policy.Advice.Dontneed { page; npages } ->
    for p = page to page + npages - 1 do
      if p >= 0 && p < Array.length st.pages then drop_page st p
    done;
    (* Dontneed promises prompt release: flush the remainder so the
       dropped frames actually reach the pool now instead of sitting
       parked until some later memory-pressure flush. *)
    flush_wb st
  | Policy.Advice.Sequential | Policy.Advice.Random -> ()

type handle = {
  h_info : unit -> info;
  h_advise : Policy.Advice.t -> unit;
  h_policy : string;
}

let info h = h.h_info ()
let advise h adv = h.h_advise adv
let policy_name h = h.h_policy

let create ?(forgetful = false) ?(initial_frames = 0) ?(readahead = 0)
    ?(policy = Policy.Spec.default) ~swap env =
  if readahead < 0 then invalid_arg "Sd_paged.create: negative readahead";
  let spec = Policy.Spec.with_readahead policy readahead in
  let tick_ref = ref (fun () -> 0) in
  let st =
    { env; swap; forgetful; spec;
      repl = Policy.Spec.make_replacement spec ~now:(fun () -> !tick_ref ());
      pf = Policy.Spec.make_prefetch spec;
      wb = Policy.Writeback.create ~write:(fun ~blok:_ ~nbloks:_ -> ()) ();
      bitmap = Bloks.create ~nbloks:(max 1 (Usbs.Sfs.page_capacity swap));
      stretch = None; pages = [||]; blok_of_page = [||]; pool = [];
      tick = 0; page_ins = 0; page_outs = 0; demand_zeros = 0; evictions = 0;
      prefetched = 0; prefetch_hits = 0; prefetch_waste = 0; rescues = 0 }
  in
  tick_ref := (fun () -> st.tick);
  st.wb <-
    Policy.Writeback.create ~max_batch:spec.Policy.Spec.wb_batch
      ~write:(fun ~blok ~nbloks ->
        let sp = span_start st "usd.write" in
        Usbs.Sfs.write_pages st.swap ~page_index:blok ~npages:nbloks;
        span_finish sp;
        st.page_outs <- st.page_outs + nbloks;
        metric_add st "policy.page_out" nbloks;
        metric_inc st "policy.wb_flush")
      ();
  let shortfall = ref 0 in
  for _ = 1 to initial_frames do
    match Frames.alloc env.Stretch_driver.frames env.Stretch_driver.frames_client with
    | Some pfn -> st.pool <- pfn :: st.pool
    | None -> incr shortfall
  done;
  if !shortfall > 0 then
    Error (Printf.sprintf "could not preallocate %d frames" !shortfall)
  else
    let pname = Policy.Spec.name spec in
    Ok
      ( { Stretch_driver.name =
            (if forgetful then Printf.sprintf "paged(forgetful,%s)" pname
             else Printf.sprintf "paged(%s)" pname);
          bind = bind st;
          fast = fast st;
          full = full st;
          relinquish = relinquish st;
          resident_pages =
            (fun () -> st.repl.Policy.Replacement.residents ());
          free_frames = (fun () -> List.length st.pool) },
        { h_info =
            (fun () ->
              { page_ins = st.page_ins; page_outs = st.page_outs;
                demand_zeros = st.demand_zeros; evictions = st.evictions;
                prefetched = st.prefetched;
                prefetch_hits = st.prefetch_hits;
                prefetch_waste = st.prefetch_waste;
                wb_flushes = Policy.Writeback.flushes st.wb;
                rescues = st.rescues });
          h_advise = advise_st st;
          h_policy = pname } )
