(** Blok allocator for swap space.

    A {e blok} is a contiguous set of disk blocks that is a multiple of
    the page size. The paged stretch driver tracks its swap space as a
    bitmap of bloks: a singly linked list of bitmap structures,
    allocated first-fit, with a hint pointer to the earliest structure
    known to have free bloks — exactly the structure the paper
    describes. *)

type t

val create : nbloks:int -> t

val capacity : t -> int
val in_use : t -> int
val free_count : t -> int

val alloc : t -> int option
(** First-fit allocation; [None] when full. *)

val claim : t -> int -> bool
(** Mark a specific blok allocated — restoring a recovered slot
    assignment after a restart. [false] if it was already allocated
    (a collision in the recovered state). Raises [Invalid_argument]
    out of range. *)

val free : t -> int -> unit
(** Raises [Invalid_argument] if the blok is not allocated. *)

val is_allocated : t -> int -> bool

val check_invariants : t -> unit
(** Internal-consistency check for tests: the use count matches the
    bitmaps and the hint never skips a structure with free bloks. *)
