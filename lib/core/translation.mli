(** The translation system.

    Two halves, as in the paper:

    - The {b high-level} part is private to the system domain: it
      bootstraps the MMU, builds page tables for the stretch allocator
      (installing "NULL mappings" — invalid entries carrying the
      stretch id and global protection so that a first touch faults and
      the fault can be classified), and tears ranges down again.

    - The {b low-level} part is the validated [map]/[unmap]/[trans]
      pseudo-syscall interface that applications use directly to manage
      their own mappings: the caller must execute in a protection
      domain holding the [meta] right for the stretch containing the
      address, and a frame being mapped must be owned by the calling
      domain and not currently mapped or nailed (checked via the
      RamTab).

    All operations return the simulated time they consumed so the
    caller can charge it to the right CPU account. *)

open Engine
open Hw

type t

type error =
  | No_meta          (** caller lacks the meta right *)
  | Not_stretch      (** address is not part of any stretch *)
  | Frame_unusable   (** frame not owned by caller, or mapped/nailed *)
  | Not_mapped       (** unmap of an unmapped address *)

val pp_error : Format.formatter -> error -> unit

val create : Mmu.t -> Ramtab.t -> t

val mmu : t -> Mmu.t
val ramtab : t -> Ramtab.t

(** {2 High-level interface (system domain)} *)

val add_null_range :
  t -> sid:int -> global:Rights.t -> base:Addr.vaddr -> npages:int -> unit
(** Install NULL mappings for a freshly allocated stretch. *)

val remove_range : t -> base:Addr.vaddr -> npages:int -> unit
(** Delete all entries for a destroyed stretch. Frames still mapped are
    released to [Unused] in the RamTab. *)

(** {2 Low-level interface (validated syscalls)} *)

val map :
  t -> pdom:Pdom.t -> domain:int -> va:Addr.vaddr -> pfn:int ->
  (Time.span, error) result
(** Arrange that [va] maps to frame [pfn]. The new mapping has FOR/FOW
    armed so referenced/dirty tracking starts fresh. *)

val unmap :
  t -> pdom:Pdom.t -> domain:int -> va:Addr.vaddr ->
  (Pte.t * Time.span, error) result
(** Remove the mapping of [va]; further access faults. Returns the
    {e previous} PTE so the caller can inspect dirty/referenced bits
    (a paging stretch driver needs them to decide whether to clean). *)

val map_shared :
  t -> pdom:Pdom.t -> va:Addr.vaddr -> pfn:int -> (Time.span, error) result
(** Install a {e shared} mapping of [va] to [pfn]: the frame may be
    owned by another domain (the share host) and may already be mapped
    under other virtual addresses. Each successful call takes one
    RamTab reference on the frame; a nailed frame, or a mapped frame
    with no references (someone's private mapping), is refused with
    [Frame_unusable]. *)

val unmap_shared :
  t -> pdom:Pdom.t -> va:Addr.vaddr -> (Pte.t * int * Time.span, error) result
(** Remove one shared mapping of [va], dropping its RamTab reference.
    Returns the previous PTE and the number of references remaining;
    at zero the frame reverts to [Unused] and the share host may free
    it. [Frame_unusable] if the mapped frame holds no references (it
    is someone's private mapping — use {!unmap}). *)

val trans : t -> va:Addr.vaddr -> Pte.t * Time.span
(** Retrieve the current mapping, if any ({!Pte.absent} otherwise). *)

val protect_range :
  t -> pdom:Pdom.t -> base:Addr.vaddr -> npages:int -> Rights.t ->
  (Time.span, error) result
(** Page-table-based protection change: rewrite the global rights of
    every entry in the range (cost is per page — this is the slow
    variant Table 1 measures as [(un)prot100]). The caller needs meta
    on the first page's stretch; idempotent changes are detected and
    cost almost nothing. *)
