open Hw

type state = {
  env : Stretch_driver.env;
  mutable nailed : int; (* pages nailed *)
}

let bind st (s : Stretch.t) =
  let env = st.env in
  let ramtab = Translation.ramtab env.translation in
  for i = 0 to Stretch.npages s - 1 do
    match Frames.alloc env.frames env.frames_client with
    (* Nailed stretches are admission-checked against the guarantee
       before bind; running dry here means the caller over-committed
       its own frame stack — an experiment-setup bug. *)
    | None ->
      failwith
        (Printf.sprintf "%s: nailed bind: out of frames at page %d"
           env.domain_name i)
    | Some pfn ->
      let va = Stretch.page_base s i in
      Stretch_driver.map_page env va ~pfn;
      Ramtab.set_state ramtab ~pfn Ramtab.Nailed;
      env.consume_cpu env.cost.Cost.page_zero;
      (* Nailed frames are never revocable: keep them least revocable. *)
      Frame_stack.move_to_bottom (Frames.frame_stack env.frames_client) pfn;
      st.nailed <- st.nailed + 1
  done

let create env =
  let st = { env; nailed = 0 } in
  Ok
    { Stretch_driver.name = "nailed";
      bind = bind st;
      fast =
        (fun fault ->
          Stretch_driver.Failure
            (Format.asprintf "nailed stretch should never fault (%a)" Fault.pp
               fault));
      full =
        (fun fault ->
          Stretch_driver.Failure
            (Format.asprintf "nailed stretch should never fault (%a)" Fault.pp
               fault));
      relinquish = (fun ~want:_ -> 0);
      resident_pages = (fun () -> st.nailed);
      free_frames = (fun () -> 0) }
