open Hw

type t = { mmu : Mmu.t; ramtab : Ramtab.t }

type error = No_meta | Not_stretch | Frame_unusable | Not_mapped

let pp_error ppf = function
  | No_meta -> Format.pp_print_string ppf "no meta right"
  | Not_stretch -> Format.pp_print_string ppf "address not in any stretch"
  | Frame_unusable -> Format.pp_print_string ppf "frame not usable by caller"
  | Not_mapped -> Format.pp_print_string ppf "address not mapped"

let create mmu ramtab = { mmu; ramtab }

let mmu t = t.mmu
let ramtab t = t.ramtab

let add_null_range t ~sid ~global ~base ~npages =
  let vpn0 = Addr.vpn_of_vaddr base in
  for i = 0 to npages - 1 do
    Mmu.set_pte t.mmu ~vpn:(vpn0 + i) (Pte.make ~sid ~global)
  done

let remove_range t ~base ~npages =
  let vpn0 = Addr.vpn_of_vaddr base in
  for i = 0 to npages - 1 do
    let vpn = vpn0 + i in
    let pte = Mmu.lookup t.mmu ~vpn in
    if (not (Pte.is_absent pte)) && Pte.valid pte then
      Ramtab.set_state t.ramtab ~pfn:(Pte.pfn pte) Ramtab.Unused;
    Mmu.set_pte t.mmu ~vpn Pte.absent
  done

(* Light-weight validation: the caller's protection domain must hold
   the meta right for the stretch containing the page. *)
let check_meta ~pdom pte =
  if Pte.is_absent pte then Error Not_stretch
  else if Pdom.holds_meta pdom ~sid:(Pte.sid pte) ~global:(Pte.global pte)
  then Ok ()
  else Error No_meta

let cost t = Mmu.cost t.mmu

let map t ~pdom ~domain ~va ~pfn =
  let vpn = Addr.vpn_of_vaddr va in
  let pte = Mmu.lookup t.mmu ~vpn in
  match check_meta ~pdom pte with
  | Error e -> Error e
  | Ok () ->
    if not (Ramtab.is_available_for_mapping t.ramtab ~pfn ~domain) then
      Error Frame_unusable
    else begin
      Mmu.set_pte t.mmu ~vpn (Pte.set_valid pte ~pfn);
      Ramtab.set_state t.ramtab ~pfn Ramtab.Mapped;
      let c = cost t in
      Ok (c.Cost.syscall + c.Cost.reg_op + Mmu.lookup_cost t.mmu ~vpn)
    end

let unmap t ~pdom ~domain ~va =
  let vpn = Addr.vpn_of_vaddr va in
  let pte = Mmu.lookup t.mmu ~vpn in
  match check_meta ~pdom pte with
  | Error e -> Error e
  | Ok () ->
    if not (Pte.valid pte) then Error Not_mapped
    else begin
      (* Holding meta for the stretch suffices to unmap — the frame may
         legitimately be owned by the caller or being given up under
         revocation. *)
      ignore domain;
      let pfn = Pte.pfn pte in
      Mmu.set_pte t.mmu ~vpn (Pte.set_invalid pte);
      Ramtab.set_state t.ramtab ~pfn Ramtab.Unused;
      let c = cost t in
      Ok (pte, c.Cost.syscall + c.Cost.reg_op + Mmu.lookup_cost t.mmu ~vpn)
    end

(* Shared mappings (PR 7 stacked pagers): install [pfn] under [va]
   even though the frame is owned by another domain (the share host)
   and possibly already mapped elsewhere. Soundness comes from the
   RamTab reference count: every shared mapping holds one reference,
   and the frame returns to [Unused] only when the last one drops, so
   the normal ownership checks ([free], [transparent_reclaim]) keep
   refusing to touch it while any domain still maps it. *)
let map_shared t ~pdom ~va ~pfn =
  let vpn = Addr.vpn_of_vaddr va in
  let pte = Mmu.lookup t.mmu ~vpn in
  match check_meta ~pdom pte with
  | Error e -> Error e
  | Ok () ->
    let usable =
      pfn >= 0
      && pfn < Ramtab.nframes t.ramtab
      && Ramtab.owner t.ramtab ~pfn <> None
      && (match Ramtab.state t.ramtab ~pfn with
         | Ramtab.Unused -> true
         | Ramtab.Mapped -> Ramtab.is_shared t.ramtab ~pfn
         | Ramtab.Nailed -> false)
    in
    if not usable then Error Frame_unusable
    else begin
      Mmu.set_pte t.mmu ~vpn (Pte.set_valid pte ~pfn);
      Ramtab.set_state t.ramtab ~pfn Ramtab.Mapped;
      Ramtab.add_ref t.ramtab ~pfn;
      let c = cost t in
      Ok (c.Cost.syscall + c.Cost.reg_op + Mmu.lookup_cost t.mmu ~vpn)
    end

let unmap_shared t ~pdom ~va =
  let vpn = Addr.vpn_of_vaddr va in
  let pte = Mmu.lookup t.mmu ~vpn in
  match check_meta ~pdom pte with
  | Error e -> Error e
  | Ok () ->
    if not (Pte.valid pte) then Error Not_mapped
    else begin
      let pfn = Pte.pfn pte in
      if not (Ramtab.is_shared t.ramtab ~pfn) then Error Frame_unusable
      else begin
        Mmu.set_pte t.mmu ~vpn (Pte.set_invalid pte);
        let remaining = Ramtab.drop_ref t.ramtab ~pfn in
        if remaining = 0 then Ramtab.set_state t.ramtab ~pfn Ramtab.Unused;
        let c = cost t in
        Ok
          ( pte,
            remaining,
            c.Cost.syscall + c.Cost.reg_op + Mmu.lookup_cost t.mmu ~vpn )
      end
    end

let trans t ~va =
  let vpn = Addr.vpn_of_vaddr va in
  let pte = Mmu.lookup t.mmu ~vpn in
  let c = cost t in
  (pte, c.Cost.syscall + Mmu.lookup_cost t.mmu ~vpn)

let protect_range t ~pdom ~base ~npages rights =
  let vpn0 = Addr.vpn_of_vaddr base in
  let first = Mmu.lookup t.mmu ~vpn:vpn0 in
  match check_meta ~pdom first with
  | Error e -> Error e
  | Ok () ->
    let c = cost t in
    if Rights.equal (Pte.global first) rights then
      (* Idempotent change: protection is stretch-granularity, so every
         page of the range carries the same global rights as the first
         — detect it there and return without touching the table (the
         paper measures this short-circuit at ~0.15 us). *)
      Ok (c.Cost.syscall + Mmu.lookup_cost t.mmu ~vpn:vpn0)
    else begin
      let total = ref c.Cost.syscall in
      for i = 0 to npages - 1 do
        let vpn = vpn0 + i in
        let pte = Mmu.lookup t.mmu ~vpn in
        total := !total + Mmu.lookup_cost t.mmu ~vpn;
        if not (Pte.is_absent pte) then begin
          Mmu.set_pte t.mmu ~vpn (Pte.with_global pte rights);
          total := !total + c.Cost.reg_op
        end
      done;
      Ok !total
    end
