(** The paged stretch driver.

    An extension of the physical stretch driver with a binding to the
    User-Safe Backing Store: pages may be swapped in and out of a swap
    file whose disk transactions run under the domain's own disk
    guarantee. Swap space is tracked as a bitmap of {e bloks} (see
    {!Bloks}); a page is assigned a blok the first time it must be
    cleaned, and keeps it.

    The driver is parameterised over a {!Policy.Spec.t} — this is the
    degree of freedom the paper claims for self-paging ("applications
    are free to choose their own paging policy"):

    - {b replacement} (FIFO / Clock / LRU / WSClock) nominates
      victims, driven by the domain's own virtual time (one tick per
      fault the driver handles);
    - {b read-ahead} ([Stream]/[Adaptive]) widens a page-in to a run
      of further swapped pages whose bloks are contiguous on disk,
      using spare frames, so several page-ins collapse into one disk
      transaction (an adaptive engine also follows strided faults);
    - {b write-behind} ([wb_batch > 1]) parks dirty evictions — frame
      pinned — and flushes them as coalesced transactions; a fault on
      a parked page is {e rescued} from the buffer with no disk I/O,
      so read-your-writes is preserved.

    [Policy.Spec.default] (FIFO, no read-ahead, write-through)
    reproduces the seed driver's behaviour — same fault handling, same
    eviction order, same disk transactions.

    [forgetful] reproduces the paper's paging-{e out} experiment
    (Figure 8): the driver "forgets" that pages have a copy on disk, so
    it never pages in — every fault is a demand-zero fill and every
    eviction is a dirty write-back.

    [readahead] is the seed's stream-paging knob, kept for
    compatibility: it forces [Stream readahead] onto a spec that has
    no read-ahead of its own. Passing [readahead > 0] together with a
    [policy] that already configures read-ahead ([+raN]/[+adN]) is
    rejected with [Invalid_argument] — pick one knob.

    One paged driver backs exactly one stretch. *)

type info = {
  page_ins : int;
      (** Demand page-ins: pages read from swap because a fault needed
          them. Disjoint from [prefetched] — a page read from swap is
          counted in exactly one of the two, so
          [page_ins + prefetched] is the total pages read. *)
  page_outs : int;  (** pages written to swap (immediate or batched) *)
  demand_zeros : int;
  evictions : int;  (** victims unmapped (cleaned, parked or clean) *)
  prefetched : int;
      (** pages brought in by read-ahead, never by demand; disjoint
          from [page_ins] (see above) *)
  prefetch_hits : int;
      (** prefetched pages observed referenced before eviction *)
  prefetch_waste : int;
      (** prefetched pages evicted without ever being referenced;
          hits + waste <= prefetched (still-resident ones pending) *)
  wb_flushes : int;
      (** coalesced write-behind transactions issued *)
  rescues : int;
      (** faults satisfied from the write-behind buffer (cancelled
          write, remapped frame, no disk I/O) *)
  lost_pages : int;
      (** pages whose contents were lost to media errors after every
          recovery rung (retry, spare remap, re-blok) was exhausted;
          a later fault on such a page is a domain fault *)
  rebloks : int;
      (** pages re-sited to a fresh blok after their blok went bad
          (on top of the USBS's own spare-slot remapping) *)
  shed_frames : int;
      (** pool frames returned to the allocator by the swap-exhaustion
          degradation (optimistic holdings above the guarantee) *)
  restored_pages : int;
      (** committed pages re-adopted from the journal's recovered
          image at bind time (restarted domains only) *)
  wb_degraded : bool;
      (** write-behind lost parked data once and the driver fell back
          to synchronous write-through (sticky) *)
  swap_exhausted : bool;
      (** the blok bitmap ran dry at least once (sticky) *)
  crashed : bool;
      (** a crash point tore one of this driver's writes: the backing
          store is gone mid-operation, every later fault is a domain
          fault, and recovery happens at remount + restart (sticky) *)
}

type handle
(** The application side of the driver: statistics and the advice
    channel. *)

val info : handle -> info

val advise : handle -> Policy.Advice.t -> unit
(** Steer the policy (madvise-style). [Sequential]/[Random] retune
    read-ahead; [Willneed] queues pages for the next read-ahead
    opportunity; [Dontneed] evicts the range now (cleaning dirty pages
    under the domain's own guarantee — call from a domain thread, not
    a notification handler). *)

val policy_name : handle -> string

val swap_extent : handle -> int * int
(** [(first_lba, nblocks)] of the swap file's disk extent — the range
    a fault-injection plan scopes its bad bloks to. *)

(** {2 Stacking seams}

    Three hooks an outer pager (the CoW driver of [lib/share]) uses to
    compose with this one. None of them is on the default fault path:
    a driver whose handle is never frozen or adopted behaves
    bit-for-bit as before. *)

val surrender_resident : handle -> (int * int) list
(** Settle and give up every resident page: parked writes are flushed,
    dirty pages cleaned to the backing store synchronously, and each
    surrendered page flips to [Swapped] with its frame unmapped
    (Unused in the RamTab, still on the client's frame stack). Returns
    the surrendered [(page, pfn)] pairs, ready for {!Frames.transfer}
    to the share host. Pages whose durable copy cannot be established
    stay resident and are omitted. Worker/domain thread context only
    (disk I/O). *)

val adopt : handle -> page:int -> pfn:int -> unit
(** Register a private copy installed by an outer driver (a CoW
    break): the frame must already be allocated under this driver's
    frames client and mapped read-write at the page's address. The
    page enters residency dirty-latched (no disk image yet) and is
    thereafter evicted, cleaned and revoked like any other. *)

val obtain : handle -> int option
(** Get one frame by this driver's full means — pool, allocator,
    eviction (cleaning victims as needed). The outer driver uses this
    so a CoW break's copy frame is accounted and paid for exactly like
    one of the inner driver's own page-ins. Worker thread context
    only. *)

val create :
  ?forgetful:bool -> ?initial_frames:int -> ?readahead:int ->
  ?policy:Policy.Spec.t -> ?restore:(int * int) list ->
  ?backing:Tier.Backing.t ->
  swap:Usbs.Sfs.swapfile -> Stretch_driver.env ->
  (Stretch_driver.t * handle, string) result
(** [initial_frames] are allocated from the frames allocator up front
    (the paper's time-sensitive applications take all their guaranteed
    frames at initialisation). Fails if they cannot be obtained or the
    swap file is too small for the stretch once bound.

    [backing] routes every data-path transaction (page-ins, page-outs,
    committing flushes) through an alternative backing store — e.g.
    {!Tier.Store.backing} for the RAM-cache → remote-memory → disk
    tier. The default, {!Tier.Backing.of_sfs}[ swap], is the swapfile
    itself and reproduces the seed behaviour bit-for-bit. Non-default
    backends are named in the driver name ([paged(fifo@tier)]).

    [restore] is the committed [(stretch page, slot)] image recovered
    from the backing store's journal (see {!Usbs.Sfs.reattach_swap}):
    at bind time those pages start [Swapped] with their slots claimed
    out of the bitmap, so a restarted domain faults its previous
    contents back in instead of demand-zeroing. *)
