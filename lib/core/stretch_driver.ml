open Engine
open Hw

type result = Success | Retry | Failure of string

type env = {
  domain_id : int;
  domain_name : string;
  pdom : Pdom.t;
  translation : Translation.t;
  frames : Frames.t;
  frames_client : Frames.client;
  consume_cpu : Time.span -> unit;
  assert_idc_allowed : string -> unit;
  cost : Cost.t;
}

type t = {
  name : string;
  bind : Stretch.t -> unit;
  fast : Fault.t -> result;
  full : Fault.t -> result;
  relinquish : want:int -> int;
  resident_pages : unit -> int;
  free_frames : unit -> int;
}

let pp_result ppf = function
  | Success -> Format.pp_print_string ppf "success"
  | Retry -> Format.pp_print_string ppf "retry"
  | Failure m -> Format.fprintf ppf "failure (%s)" m

let map_page env va ~pfn =
  match
    Translation.map env.translation ~pdom:env.pdom ~domain:env.domain_id ~va
      ~pfn
  with
  | Ok cost -> env.consume_cpu cost
  (* Drivers only map/unmap addresses inside their own bound stretch
     with frames they own; a translation refusal is a driver bug, so
     it fails loudly rather than returning a result no caller could
     act on. *)
  | Error e ->
    failwith
      (Format.asprintf "%s: map %a failed: %a" env.domain_name Addr.pp_vaddr
         va Translation.pp_error e)

let unmap_page env va =
  match
    Translation.unmap env.translation ~pdom:env.pdom ~domain:env.domain_id ~va
  with
  | Ok (pte, cost) ->
    env.consume_cpu cost;
    pte
  | Error e ->
    failwith
      (Format.asprintf "%s: unmap %a failed: %a" env.domain_name Addr.pp_vaddr
         va Translation.pp_error e)
