(** The frames allocator: central physical-memory allocation with
    per-domain contracts and application-controlled revocation.

    Each client domain is admitted with a service contract [(g, o)] —
    quotas of {e guaranteed} and {e optimistic} frames. Admission
    control keeps Σg no larger than main memory, so every guarantee can
    be met simultaneously. While a domain holds fewer than [g] frames,
    an allocation request is guaranteed to succeed (possibly after
    revoking optimistically allocated frames from another domain);
    beyond that, frames are granted optimistically while free memory
    lasts.

    Revocation always takes from the {e top} of the victim's frame
    stack. If the top frames are unused it is {b transparent} — the
    allocator simply reclaims them. Otherwise it is {b intrusive}: the
    victim receives a revocation notification asking it to make [k]
    frames unused by a deadline (generous — cleaning dirty pages may
    need disk writes); when the victim signals ready, the allocator
    verifies and reclaims. A victim that misses the deadline, or
    replies with frames still in use, is killed and all its frames
    reclaimed. *)

open Engine
open Hw

type t

type client

(** Typed allocation/admission errors. [pp_error]/[error_message]
    render the human-readable strings the API used to return. *)
type error =
  | Negative_quota
  | Admission_overcommit of { requested : int; available : int }
      (** [requested] guaranteed frames were asked for but only
          [available] remain unguaranteed. *)
  | Frame_out_of_range of { pfn : int; nframes : int }
  | Frame_in_use of { pfn : int }
  | Quota_exhausted of { held : int; quota : int }
  | No_such_region of { region : string }
  | No_matching_frame

val pp_error : Format.formatter -> error -> unit
val error_message : error -> string

val create :
  ?revocation_deadline:Time.span -> Sim.t -> Ramtab.t -> nframes:int -> t
(** Manage [nframes] physical frames (PFNs [0 .. nframes-1]).
    [revocation_deadline] is the paper's T, default 100 ms. *)

val admit :
  t -> domain:int -> guarantee:int -> optimistic:int ->
  (client, error) result
(** Refused ([Admission_overcommit]) if Σ guarantees would exceed the
    number of frames. *)

val retire : t -> client -> unit
(** Release the contract and every frame the client still holds (used
    for clean shutdown; killing is internal). *)

val set_revocation_handler :
  client -> (k:int -> deadline:Time.t -> unit) -> unit
(** Invoked (from the allocator's context) to deliver a revocation
    notification; the domain must arrange for the top [k] stack frames
    to be unused and then call {!revocation_ready}. *)

val set_kill_handler : t -> (int -> unit) -> unit
(** Called with the domain id when a domain flunks the revocation
    protocol. *)

val alloc : t -> client -> int option
(** Allocate one frame (default policy); may block (revocation). [None]
    only when the client is over [g + o] or memory is exhausted beyond
    what its guarantee covers. The frame is recorded in the RamTab and
    pushed on top of the client's frame stack. *)

(** {2 Fine-grained placement}

    Applications with platform knowledge may request specific physical
    frames, frames within a "special" region (e.g. DMA-accessible
    memory), or frames of a particular cache colour. Constrained
    requests never trigger revocation, so — like the paper's
    multi-frame requests under fragmentation — they may fail even
    within the guarantee. *)

val add_region : t -> name:string -> first:int -> count:int -> unit
(** Declare a named frame region (I/O space, DMA window, ...). *)

val regions : t -> (string * int * int) list

val alloc_specific : t -> client -> pfn:int -> (unit, error) result
(** Request exactly frame [pfn]. *)

val alloc_in_region : t -> client -> region:string -> (int, error) result
(** A frame inside the named region: [No_such_region] if the region
    was never declared, [No_matching_frame] if it has no free frame. *)

val alloc_colored : t -> client -> color:int -> colors:int -> int option
(** A frame whose number is congruent to [color] modulo [colors] —
    page colouring for large direct-mapped caches. *)

val alloc_run : t -> client -> log2:int -> int option
(** An aligned run of [2^log2] contiguous frames for a superpage TLB
    mapping; the RamTab records the logical frame width. Returns the
    first frame of the run. *)

val free : t -> client -> int -> unit
(** Voluntarily return a frame. It must be unused (unmapped) in the
    RamTab. *)

val transfer : t -> src:client -> dst:client -> int -> (unit, error) result
(** Move a settled (unmapped, unshared) frame from [src]'s stack to
    [dst]'s, transferring RamTab ownership without a trip through the
    free pool. Used when a frozen CoW template surrenders its resident
    image to the share host. [Frame_in_use] if the frame is still
    mapped or shared; [Quota_exhausted] if [dst] is at quota. *)

val revocation_ready : t -> client -> unit
(** The domain's reply that the top frames of its stack may now be
    reclaimed. *)

(** {2 Introspection} *)

val frame_stack : client -> Frame_stack.t
val guarantee : client -> int
val optimistic_quota : client -> int
val held : client -> int
val domain_id : client -> int
val client_of_domain : t -> int -> client option
(** O(1) lookup of a live client by owning domain id. *)

val is_live : client -> bool
val free_frames : t -> int
val total_frames : t -> int
val guaranteed_total : t -> int
val revocations : t -> int
(** Count of intrusive revocation rounds performed. *)

val transparent_revocations : t -> int
