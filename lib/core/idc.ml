open Engine

type ('req, 'rep) invocation = {
  arg : 'req;
  reply : ('rep, string) result Sync.Ivar.t;
}

type ('req, 'rep) t = {
  iname : string;
  sdom : Domains.t;
  entry : ('req, 'rep) invocation Entry.t;
}

let name t = t.iname
let server t = t.sdom
let calls_served t = Entry.slow_handled t.entry

let offer sdom ~name ?workers handler =
  let entry =
    Entry.create sdom ~name:("idc-" ^ name) ?workers
      ~fast:(fun _ -> `Defer) (* handlers may block: always worker-side *)
      ~slow:(fun inv ->
        let result =
          match handler inv.arg with
          | rep -> Ok rep
          | exception Failure m -> Error m
        in
        ignore (Sync.Ivar.try_fill inv.reply result))
      ()
  in
  { iname = name; sdom; entry }

(* IDC failures take the caller down: a synchronous call into a dead
   or erroring server has no partial result to hand back, and in the
   simulation such a call is a bug in the experiment's domain
   choreography, not a recoverable condition. *)
let call cdom t arg =
  Domains.assert_idc_allowed cdom ("IDC call to " ^ t.iname);
  if not (Domains.alive t.sdom) then
    failwith (Printf.sprintf "Idc.call %s: server domain is dead" t.iname);
  (* Marshalling and the kernel hop are charged to the caller. *)
  Domains.consume_cpu cdom (Domains.cost cdom).Hw.Cost.idc_call;
  let reply = Sync.Ivar.create () in
  Entry.notify t.entry { arg; reply };
  match Sync.Ivar.read reply with
  | Ok rep -> rep
  | Error m -> failwith (Printf.sprintf "Idc.call %s: %s" t.iname m)
