let chunk_bits = 64

type chunk = {
  base : int;  (* first blok index covered *)
  nbits : int; (* bloks covered (<= 64) *)
  mutable bits : int64; (* 1 = allocated *)
  mutable next : chunk option;
}

type t = {
  mutable head : chunk option;
  mutable hint : chunk option;
      (* earliest structure known to have free bloks *)
  capacity : int;
  mutable used : int;
}

let rec build base remaining =
  if remaining <= 0 then None
  else begin
    let nbits = min chunk_bits remaining in
    Some { base; nbits; bits = 0L; next = build (base + nbits) (remaining - nbits) }
  end

let create ~nbloks =
  if nbloks <= 0 then invalid_arg "Bloks.create: nbloks must be positive";
  let head = build 0 nbloks in
  { head; hint = head; capacity = nbloks; used = 0 }

let capacity t = t.capacity
let in_use t = t.used
let free_count t = t.capacity - t.used

let chunk_full c =
  if c.nbits = chunk_bits then Int64.equal c.bits Int64.minus_one
  else Int64.equal c.bits (Int64.sub (Int64.shift_left 1L c.nbits) 1L)

let first_free_bit c =
  let rec scan i =
    if i >= c.nbits then None
    else if Int64.logand (Int64.shift_right_logical c.bits i) 1L = 0L then Some i
    else scan (i + 1)
  in
  scan 0

let alloc t =
  (* Start from the hint; fall back to a scan from the head if the hint
     chain is exhausted (the hint is conservative, never wrong). *)
  let rec scan c =
    match c with
    | None -> None
    | Some c ->
      (match first_free_bit c with
      | Some bit ->
        c.bits <- Int64.logor c.bits (Int64.shift_left 1L bit);
        t.used <- t.used + 1;
        (* Advance the hint past chunks that just became full. *)
        if chunk_full c then t.hint <- c.next else t.hint <- Some c;
        Some (c.base + bit)
      | None -> scan c.next)
  in
  match scan t.hint with Some b -> Some b | None -> scan t.head

let find_chunk t blok =
  let rec walk = function
    | None -> None
    | Some c ->
      if blok >= c.base && blok < c.base + c.nbits then Some c else walk c.next
  in
  walk t.head

let is_allocated t blok =
  match find_chunk t blok with
  | None -> false
  | Some c ->
    Int64.logand (Int64.shift_right_logical c.bits (blok - c.base)) 1L = 1L

let claim t blok =
  match find_chunk t blok with
  | None -> invalid_arg "Bloks.claim: blok out of range"
  | Some c ->
    let bit = blok - c.base in
    if Int64.logand (Int64.shift_right_logical c.bits bit) 1L = 1L then false
    else begin
      c.bits <- Int64.logor c.bits (Int64.shift_left 1L bit);
      t.used <- t.used + 1;
      (* Claiming only removes free space, so the hint stays
         conservative; a chunk that just filled is still a valid hint
         (alloc skips full chunks). *)
      true
    end

let free t blok =
  match find_chunk t blok with
  | None -> invalid_arg "Bloks.free: blok out of range"
  | Some c ->
    let bit = blok - c.base in
    if Int64.logand (Int64.shift_right_logical c.bits bit) 1L = 0L then
      invalid_arg "Bloks.free: blok not allocated";
    c.bits <- Int64.logand c.bits (Int64.lognot (Int64.shift_left 1L bit));
    t.used <- t.used - 1;
    (* Freed space earlier than the hint moves the hint back. *)
    (match t.hint with
    | Some h when h.base <= c.base -> ()
    | _ -> t.hint <- Some c)

let check_invariants t =
  let counted = ref 0 in
  let rec walk = function
    | None -> ()
    | Some c ->
      for i = 0 to c.nbits - 1 do
        if Int64.logand (Int64.shift_right_logical c.bits i) 1L = 1L then
          incr counted
      done;
      walk c.next
  in
  walk t.head;
  assert (!counted = t.used);
  (* No chunk before the hint has free bloks. *)
  let rec check_before = function
    | None -> ()
    | Some c ->
      (match t.hint with
      | Some h when c.base < h.base ->
        assert (chunk_full c);
        check_before c.next
      | _ -> ())
  in
  (match t.hint with Some _ -> check_before t.head | None -> ())
