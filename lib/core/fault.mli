(** Memory-fault records.

    On a fault the kernel saves the faulting context, records the fault
    details where the domain can see them, and sends an event to the
    faulting domain — that is the {e whole} of the kernel's involvement
    (self-paging principle 3). The faulting thread blocks on the
    [resolved] ivar; the domain's memory-management entry fills it once
    a stretch driver has dealt with the fault. *)

open Engine
open Hw

type outcome =
  | Resolved
  | Failed of string
      (** The domain could not satisfy its own fault (no safety net). *)

type t = {
  va : Addr.vaddr;
  access : Mmu.access;
  kind : Mmu.fault_kind;
  sid : int option;  (** stretch id, when the address lies in one *)
  raised_at : Time.t;
  resolved : outcome Sync.Ivar.t;
  mutable span : Obs.Span.t option;
      (** Root observability span for this fault's resolution, when
          tracing is enabled; child spans (activation, dispatch, USD
          transactions) link to it. *)
}

exception Unresolved of t * string
(** Raised in the faulting thread when the fault could not be
    resolved. *)

val make :
  va:Addr.vaddr -> access:Mmu.access -> kind:Mmu.fault_kind -> sid:int option ->
  now:Time.t -> t

val pp : Format.formatter -> t -> unit
