open Engine
open Hw

type revocation = {
  rev_k : int;
  ready : unit Sync.Ivar.t;
}

type client = {
  domain : int;
  mutable g : int;
  mutable o : int;
  mutable n : int;
  stack : Frame_stack.t;
  mutable notify_revoke : (k:int -> deadline:Time.t -> unit) option;
  mutable pending_rev : revocation option;
  mutable live : bool;
  (* Position on the allocator's member list; None once retired. *)
  mutable node : client Ilist.node option;
}

type region = { rname : string; first : int; count : int }

type error =
  | Negative_quota
  | Admission_overcommit of { requested : int; available : int }
  | Frame_out_of_range of { pfn : int; nframes : int }
  | Frame_in_use of { pfn : int }
  | Quota_exhausted of { held : int; quota : int }
  | No_such_region of { region : string }
  | No_matching_frame

let pp_error ppf = function
  | Negative_quota -> Format.pp_print_string ppf "negative quota"
  | Admission_overcommit { requested; available } ->
    Format.fprintf ppf
      "admission refused: %d guaranteed frames requested, %d available"
      requested available
  | Frame_out_of_range { pfn; nframes } ->
    Format.fprintf ppf "frame %d out of range (0..%d)" pfn (nframes - 1)
  | Frame_in_use { pfn } -> Format.fprintf ppf "frame %d not free" pfn
  | Quota_exhausted { held; quota } ->
    Format.fprintf ppf "quota exhausted (%d/%d frames held)" held quota
  | No_such_region { region } ->
    Format.fprintf ppf "no region named %S" region
  | No_matching_frame -> Format.pp_print_string ppf "no matching free frame"

let error_message e = Format.asprintf "%a" pp_error e

type t = {
  sim : Sim.t;
  ramtab : Ramtab.t;
  nframes : int;
  (* Free pool as a scannable bitmap so that requests for specific
     frames, coloured frames or frames inside a special region can be
     honoured (the default policy scans round-robin from a cursor). *)
  avail : bool array;
  mutable free_count : int;
  mutable cursor : int;
  (* Regions both as an ordered list (the [regions] accessor reports
     declaration recency, as the seed did) and keyed by name for O(1)
     placement lookups. *)
  mutable region_list : region list;
  region_by_name : (string, region) Hashtbl.t;
  (* Members in admission order (victim picking folds it, and ties go
     to the earliest-admitted holder, as with the seed list), indexed
     by owning domain id. *)
  members : client Ilist.t;
  by_domain : (int, client) Hashtbl.t;
  (* Running sum of admitted guarantees, so admission control is O(1)
     per request rather than a member scan. *)
  mutable gsum : int;
  mutable kill : int -> unit;
  deadline_span : Time.span;
  (* One revocation round at a time. *)
  rev_lock : Sync.Semaphore.t;
  mutable intrusive_count : int;
  mutable transparent_count : int;
}

let create ?(revocation_deadline = Time.ms 100) sim ramtab ~nframes =
  if nframes <= 0 || nframes > Ramtab.nframes ramtab then
    invalid_arg "Frames.create: bad frame count";
  { sim; ramtab; nframes; avail = Array.make nframes true;
    free_count = nframes; cursor = 0; region_list = [];
    region_by_name = Hashtbl.create 16; members = Ilist.create ();
    by_domain = Hashtbl.create 64; gsum = 0;
    kill = (fun _ -> ()); deadline_span = revocation_deadline;
    rev_lock = Sync.Semaphore.create 1; intrusive_count = 0;
    transparent_count = 0 }

let add_region t ~name ~first ~count =
  if first < 0 || count <= 0 || first + count > t.nframes then
    invalid_arg "Frames.add_region: out of range";
  if Hashtbl.mem t.region_by_name name then
    invalid_arg "Frames.add_region: duplicate name";
  let r = { rname = name; first; count } in
  t.region_list <- r :: t.region_list;
  Hashtbl.replace t.region_by_name name r

(* Free-pool primitives. *)

let pool_put t pfn =
  assert (not t.avail.(pfn));
  t.avail.(pfn) <- true;
  t.free_count <- t.free_count + 1

let pool_take t pfn =
  assert (t.avail.(pfn));
  t.avail.(pfn) <- false;
  t.free_count <- t.free_count - 1

(* Default policy: round-robin scan from the cursor. *)
let pool_take_any t =
  if t.free_count = 0 then None
  else begin
    let n = t.nframes in
    let rec scan i steps =
      if steps >= n then None
      else if t.avail.(i) then begin
        t.cursor <- (i + 1) mod n;
        pool_take t i;
        Some i
      end
      else scan ((i + 1) mod n) (steps + 1)
    in
    scan t.cursor 0
  end

let pool_take_matching t pred =
  let rec scan i =
    if i >= t.nframes then None
    else if t.avail.(i) && pred i then begin
      pool_take t i;
      Some i
    end
    else scan (i + 1)
  in
  scan 0

let guaranteed_total t = t.gsum

let admit t ~domain ~guarantee ~optimistic =
  if guarantee < 0 || optimistic < 0 then Error Negative_quota
  else if t.gsum + guarantee > t.nframes then
    Error
      (Admission_overcommit
         { requested = guarantee; available = t.nframes - t.gsum })
  else begin
    let c =
      { domain; g = guarantee; o = optimistic; n = 0;
        stack = Frame_stack.create (); notify_revoke = None;
        pending_rev = None; live = true; node = None }
    in
    let node = Ilist.make_node c in
    c.node <- Some node;
    Ilist.push_back t.members node;
    Hashtbl.replace t.by_domain domain c;
    t.gsum <- t.gsum + guarantee;
    if !Obs.enabled then
      Obs.Qos_audit.mem_grant ~now:(Sim.now t.sim) ~dom:domain ~guarantee
        ~capacity:t.nframes;
    Ok c
  end

let client_of_domain t domain = Hashtbl.find_opt t.by_domain domain

let set_revocation_handler c f = c.notify_revoke <- Some f

let set_kill_handler t f = t.kill <- f

let frame_stack c = c.stack
let guarantee c = c.g
let optimistic_quota c = c.o
let held c = c.n
let domain_id c = c.domain
let is_live c = c.live
let free_frames t = t.free_count
let total_frames t = t.nframes
let revocations t = t.intrusive_count
let transparent_revocations t = t.transparent_count

let grant t c pfn =
  Ramtab.set_owner t.ramtab ~pfn ~owner:c.domain ~width:Addr.page_shift;
  Frame_stack.push c.stack pfn;
  c.n <- c.n + 1

(* Reclaim one frame from the top of a victim's stack; the frame must
   already be unused. *)
let reclaim_top t victim =
  match Frame_stack.top_k victim.stack 1 with
  | [ pfn ] when Ramtab.state t.ramtab ~pfn = Ramtab.Unused ->
    ignore (Frame_stack.remove victim.stack pfn);
    Ramtab.clear_owner t.ramtab ~pfn;
    victim.n <- victim.n - 1;
    pool_put t pfn;
    true
  | _ -> false

let release_all_frames t c =
  List.iter
    (fun pfn ->
      Ramtab.set_state t.ramtab ~pfn Ramtab.Unused;
      Ramtab.clear_owner t.ramtab ~pfn;
      pool_put t pfn)
    (Frame_stack.to_list c.stack);
  List.iter (fun pfn -> ignore (Frame_stack.remove c.stack pfn))
    (Frame_stack.to_list c.stack);
  c.n <- 0

let unlink t c =
  (match c.node with
  | Some node when Ilist.active node -> Ilist.remove t.members node
  | _ -> ());
  c.node <- None;
  (match Hashtbl.find_opt t.by_domain c.domain with
  | Some c' when c' == c -> Hashtbl.remove t.by_domain c.domain
  | _ -> ());
  t.gsum <- t.gsum - c.g

let kill_victim t victim =
  victim.live <- false;
  victim.pending_rev <- None;
  unlink t victim;
  release_all_frames t victim;
  if !Obs.enabled then Obs.Qos_audit.mem_release ~dom:victim.domain;
  t.kill victim.domain

let revocation_ready _t c =
  match c.pending_rev with
  | None -> ()
  | Some rev -> Sync.Ivar.fill rev.ready ()

(* Pick the domain holding the most optimistic frames; ties go to the
   earliest-admitted holder (the fold direction the seed list had). *)
let pick_victim t ~requester =
  Ilist.fold
    (fun best c ->
      if c.live && c.domain <> requester.domain && c.n > c.g then
        match best with
        | Some b when b.n - b.g >= c.n - c.g -> best
        | _ -> Some c
      else best)
    None t.members

(* Transparent first: reclaim already-unused frames off the top of the
   victim's stack. Returns how many frames were recovered. *)
let transparent_reclaim t victim ~want =
  let got = ref 0 in
  let continue_ = ref true in
  while !continue_ && !got < want do
    if reclaim_top t victim then incr got else continue_ := false
  done;
  if !got > 0 then t.transparent_count <- t.transparent_count + 1;
  !got

let intrusive_reclaim t victim ~want =
  match victim.notify_revoke with
  | None ->
    (* A domain that cannot handle revocation notifications should not
       hold optimistic frames; it flunks the protocol immediately. *)
    kill_victim t victim;
    min want t.free_count
  | Some notify ->
    t.intrusive_count <- t.intrusive_count + 1;
    let started = Sim.now t.sim in
    let deadline = Time.add started t.deadline_span in
    let rev = { rev_k = want; ready = Sync.Ivar.create () } in
    victim.pending_rev <- Some rev;
    notify ~k:want ~deadline;
    (* Wait for the ready reply or the deadline, whichever first. *)
    let replied =
      Sync.Ivar.read_timeout rev.ready t.deadline_span <> None
    in
    victim.pending_rev <- None;
    let audit ~ok =
      if !Obs.enabled then begin
        let finished = Sim.now t.sim in
        Obs.Qos_audit.revocation_done ~now:finished ~dom:victim.domain
          ~deadline ~ok;
        Obs.Metrics.observe
          ~label:(Printf.sprintf "dom%d" victim.domain)
          "revoke.latency_us"
          (Time.to_us (Time.diff finished started))
      end
    in
    if not replied then begin
      audit ~ok:false;
      kill_victim t victim;
      want
    end
    else begin
      (* Verify: the top k frames must all be unused now. *)
      let got = ref 0 in
      let ok = ref true in
      while !ok && !got < rev.rev_k do
        if reclaim_top t victim then incr got else ok := false
      done;
      if !got < rev.rev_k then begin
        audit ~ok:false;
        kill_victim t victim;
        rev.rev_k
      end
      else begin
        audit ~ok:true;
        !got
      end
    end

(* How many frames to reclaim per revocation round: batching amortises
   the notification round trip and the victim's cleaning set-up over
   several frames ("release k frames by time T"). *)
let revocation_batch = 8

(* Ensure at least one free frame for a guaranteed allocation. *)
let rec make_free t ~requester =
  if t.free_count > 0 then true
  else begin
    Sync.Semaphore.acquire t.rev_lock;
    let result =
      if t.free_count > 0 then true
      else begin
        match pick_victim t ~requester with
        | None -> false
        | Some victim ->
          let want = max 1 (min revocation_batch (victim.n - victim.g)) in
          let got = transparent_reclaim t victim ~want in
          let got =
            if got > 0 then got else intrusive_reclaim t victim ~want
          in
          ignore got;
          t.free_count > 0
      end
    in
    Sync.Semaphore.release t.rev_lock;
    if result then true
    else if pick_victim t ~requester <> None then make_free t ~requester
    else false
  end

let alloc t c =
  if not c.live then None
  else if c.n < c.g then begin
    (* Guaranteed: must succeed, revoking optimistic frames if needed. *)
    if make_free t ~requester:c then begin
      match pool_take_any t with
      | Some pfn ->
        grant t c pfn;
        Some pfn
      | None -> None (* impossible while Σg <= nframes; defensive *)
    end
    else begin
      if !Obs.enabled then
        Obs.Qos_audit.guarantee_starved ~now:(Sim.now t.sim) ~dom:c.domain;
      None
    end
  end
  else if c.n < c.g + c.o && t.free_count > 0 then begin
    match pool_take_any t with
    | Some pfn ->
      grant t c pfn;
      Some pfn
    | None -> None
  end
  else None

(* Quota check shared by the placement-constrained allocators: these
   never trigger revocation (a constrained request "may or may not
   succeed", as the paper notes for multi-frame requests under
   fragmentation). *)
let within_quota c = c.live && c.n < c.g + c.o

let alloc_matching t c pred =
  if not (within_quota c) then None
  else
    match pool_take_matching t pred with
    | Some pfn ->
      grant t c pfn;
      Some pfn
    | None -> None

let alloc_specific t c ~pfn =
  if pfn < 0 || pfn >= t.nframes then
    Error (Frame_out_of_range { pfn; nframes = t.nframes })
  else if not (within_quota c) then
    Error (Quota_exhausted { held = c.n; quota = c.g + c.o })
  else if not t.avail.(pfn) then Error (Frame_in_use { pfn })
  else begin
    pool_take t pfn;
    grant t c pfn;
    Ok ()
  end

let alloc_in_region t c ~region =
  match Hashtbl.find_opt t.region_by_name region with
  | None -> Error (No_such_region { region })
  | Some r -> (
    if not (within_quota c) then
      Error (Quota_exhausted { held = c.n; quota = c.g + c.o })
    else
      match
        alloc_matching t c (fun pfn -> pfn >= r.first && pfn < r.first + r.count)
      with
      | Some pfn -> Ok pfn
      | None -> Error No_matching_frame)

(* Superpage support: an aligned run of 2^log2 contiguous frames, so a
   single wide TLB mapping can cover it. The RamTab records the logical
   frame width on every frame of the run. *)
let alloc_run t c ~log2 =
  if log2 < 0 || log2 > 10 then invalid_arg "Frames.alloc_run: bad width";
  let count = 1 lsl log2 in
  if not c.live || c.n + count > c.g + c.o then None
  else begin
    let rec scan base =
      if base + count > t.nframes then None
      else begin
        let all_free = ref true in
        for i = base to base + count - 1 do
          if not t.avail.(i) then all_free := false
        done;
        if !all_free then Some base else scan (base + count)
      end
    in
    match scan 0 with
    | None -> None
    | Some base ->
      for pfn = base to base + count - 1 do
        pool_take t pfn;
        Ramtab.set_owner t.ramtab ~pfn ~owner:c.domain
          ~width:(Addr.page_shift + log2);
        Frame_stack.push c.stack pfn
      done;
      c.n <- c.n + count;
      Some base
  end

let alloc_colored t c ~color ~colors =
  if colors <= 0 || color < 0 || color >= colors then
    invalid_arg "Frames.alloc_colored: bad colour";
  alloc_matching t c (fun pfn -> pfn mod colors = color)

let regions t = List.map (fun r -> (r.rname, r.first, r.count)) t.region_list

(* Donate a frame from one client's stack to another's (PR 7: a frozen
   CoW template surrenders its resident frames to the share host, which
   then holds them on behalf of every tenant). The frame must be
   settled — unmapped and unshared — so the hand-over is a pure
   book-keeping move; no data copies, no pool transit. *)
let transfer t ~src ~dst pfn =
  if Ramtab.owner t.ramtab ~pfn <> Some src.domain then
    invalid_arg "Frames.transfer: frame not owned by source client";
  if Ramtab.state t.ramtab ~pfn <> Ramtab.Unused then
    Error (Frame_in_use { pfn })
  else if Ramtab.is_shared t.ramtab ~pfn then Error (Frame_in_use { pfn })
  else if not (dst.live && dst.n < dst.g + dst.o) then
    Error (Quota_exhausted { held = dst.n; quota = dst.g + dst.o })
  else begin
    if not (Frame_stack.remove src.stack pfn) then
      invalid_arg "Frames.transfer: frame not on source client's stack";
    src.n <- src.n - 1;
    let width = Ramtab.width t.ramtab ~pfn in
    Ramtab.set_owner t.ramtab ~pfn ~owner:dst.domain ~width;
    Frame_stack.push dst.stack pfn;
    dst.n <- dst.n + 1;
    Ok ()
  end

let free t c pfn =
  if Ramtab.owner t.ramtab ~pfn <> Some c.domain then
    invalid_arg "Frames.free: frame not owned by client";
  if Ramtab.state t.ramtab ~pfn <> Ramtab.Unused then
    invalid_arg "Frames.free: frame still in use";
  if not (Frame_stack.remove c.stack pfn) then
    invalid_arg "Frames.free: frame not on client's stack";
  Ramtab.clear_owner t.ramtab ~pfn;
  c.n <- c.n - 1;
  pool_put t pfn

let retire t c =
  if c.live then begin
    c.live <- false;
    unlink t c;
    release_all_frames t c;
    if !Obs.enabled then Obs.Qos_audit.mem_release ~dom:c.domain
  end
