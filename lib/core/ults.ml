open Engine

type thread = {
  tname : string;
  mutable proc : Proc.t option;
  (* Parking protocol: a blocked thread stores its waker here; an
     unblock before the block is remembered as a pending wake so the
     notification cannot be lost. *)
  mutable waker : (unit -> unit) option;
  mutable pending_wake : bool;
}

type t = {
  dom : Domains.t;
  mutable live : (Proc.t * thread) list;
}

let create dom = { dom; live = [] }

let charge t =
  Domains.consume_cpu t.dom (Domains.cost t.dom).Hw.Cost.ults_schedule

let thread_name th = th.tname

let alive th = match th.proc with Some p -> Proc.is_alive p | None -> false

let threads t = List.length t.live

let find_self t =
  let me = Proc.self () in
  match List.find_opt (fun (p, _) -> p == me) t.live with
  | Some (_, th) -> th
  (* API misuse: calling scheduler operations from a process this
     ULTS instance does not own. *)
  | None -> failwith "Ults.self: not inside a ULTS thread"

let self t = find_self t

let fork t ~name body =
  charge t;
  let th = { tname = name; proc = None; waker = None; pending_wake = false } in
  let p =
    Domains.spawn_thread t.dom ~name (fun () ->
        Fun.protect
          ~finally:(fun () ->
            t.live <- List.filter (fun (_, th') -> th' != th) t.live)
          body)
  in
  th.proc <- Some p;
  t.live <- (p, th) :: t.live;
  th

let yield t =
  charge t;
  Proc.yield ()

let block t =
  let th = find_self t in
  if th.pending_wake then th.pending_wake <- false
  else begin
    charge t;
    Proc.suspend (fun wake -> th.waker <- Some wake);
    th.waker <- None
  end

let unblock t th =
  charge t;
  match th.waker with
  | Some wake ->
    th.waker <- None;
    wake ()
  | None -> th.pending_wake <- true

let join _t th =
  match th.proc with Some p -> Proc.join p | None -> ()
