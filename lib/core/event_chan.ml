type t = {
  ev_name : string;
  mutable count : int;
  mutable acked : int;
  mutable notify : (unit -> unit) option;
}

let create ?(name = "chan") () =
  { ev_name = name; count = 0; acked = 0; notify = None }

let name t = t.ev_name

let deliver t = match t.notify with Some f -> f () | None -> ()

let send t =
  t.count <- t.count + 1;
  if !Obs.enabled then Obs.Metrics.inc ~label:t.ev_name "event.sends";
  if not !Inject.enabled then deliver t
  else
    match Inject.chan ~name:t.ev_name with
    | Inject.Deliver -> deliver t
    | Inject.Drop -> ()
    | Inject.Delay d -> (
      (* Deliver late, through the simulator's timer wheel. Outside a
         process context (no clock to schedule against) the delay
         degenerates to immediate delivery. *)
      match Engine.Proc.current_sim () with
      | sim -> ignore (Engine.Sim.after sim d (fun () -> deliver t))
      | exception _ -> deliver t)

let count t = t.count
let acked t = t.acked
let pending t = t.count - t.acked

let ack t =
  let n = pending t in
  t.acked <- t.count;
  n

let attach t f = t.notify <- Some f
