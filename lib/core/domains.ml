open Engine
open Hw
open Sched

type t = {
  id : int;
  dname : string;
  sim : Sim.t;
  cpu : Cpu.t;
  cpu_client : Cpu.client;
  pdom : Pdom.t;
  mmu : Mmu.t;
  cost : Cost.t;
  fault_chan : Event_chan.t;
  fault_queue : Fault.t Queue.t;
  activations : (unit -> unit) Sync.Mailbox.t;
  mutable fault_handler : (Fault.t -> unit) option;
  (* The process currently executing a notification handler, if any:
     the no-IDC restriction applies to that process only (workers may
     run while the dispatcher is suspended mid-handler). *)
  mutable handler_proc : Proc.t option;
  mutable threads : Proc.t list;
  mutable alive : bool;
  mutable kill_hooks : (unit -> unit) list;
  mutable dispatcher : Proc.t option;
  mutable faults : int;
}

let id t = t.id
let name t = t.dname
let pdom t = t.pdom
let mmu t = t.mmu
let cost t = t.cost
let sim t = t.sim
let alive t = t.alive

(* Domain-lifecycle failwiths (here and below): charging CPU to a
   removed contract, scheduling a dead domain, or IDC from inside an
   activation handler are all choreography bugs in the caller, not
   conditions a domain can recover from mid-simulation. *)
let consume_cpu t span =
  if span > 0 then
    match Cpu.consume t.cpu t.cpu_client span with
    | Ok () -> ()
    | Error `Removed -> failwith (t.dname ^ ": CPU contract removed")

let cpu_used t = Cpu.used t.cpu_client

let fault_channel t = t.fault_chan

let set_fault_handler t f = t.fault_handler <- Some f

let current_proc_is_handler t =
  match t.handler_proc with
  | None -> false
  | Some p -> (try Proc.self () == p with Failure _ -> false)

let in_activation_handler t = current_proc_is_handler t

let assert_idc_allowed t what =
  if current_proc_is_handler t then
    failwith
      (Printf.sprintf
         "%s: IDC (%s) attempted inside an activation handler" t.dname what)

let queue_notification t f = Sync.Mailbox.send t.activations f

(* The activation dispatcher: the user-level event demultiplexer. Each
   queued notification costs an activation plus demux, charged to this
   domain, then runs with IDC disabled. *)
let dispatcher_loop t () =
  let rec loop () =
    let notification = Sync.Mailbox.recv t.activations in
    consume_cpu t (t.cost.Cost.activation + t.cost.Cost.user_demux);
    t.handler_proc <- Some (Proc.self ());
    Fun.protect ~finally:(fun () -> t.handler_proc <- None) notification;
    loop ()
  in
  loop ()

let drain_faults t () =
  ignore (Event_chan.ack t.fault_chan);
  let rec drain () =
    match Queue.take_opt t.fault_queue with
    | None -> ()
    | Some fault ->
      consume_cpu t t.cost.Cost.notify_handler;
      let act_span =
        if !Obs.enabled then
          Some
            (Obs.Span.start ~now:(Sim.now t.sim) ~label:t.dname
               ?parent:fault.Fault.span "activation")
        else None
      in
      (match t.fault_handler with
      | Some handler -> handler fault
      | None ->
        Sync.Ivar.fill fault.Fault.resolved
          (Fault.Failed "no fault handler registered"));
      (match act_span with
      | Some s -> Obs.Span.finish ~now:(Sim.now t.sim) s
      | None -> ());
      drain ()
  in
  drain ()

let create ~sim ~id ~name ~cpu ~cpu_client ~pdom ~mmu ~cost () =
  let t =
    { id; dname = name; sim; cpu; cpu_client; pdom; mmu; cost;
      fault_chan = Event_chan.create ~name:(name ^ ".fault") ();
      fault_queue = Queue.create ();
      activations = Sync.Mailbox.create ();
      fault_handler = None; handler_proc = None; threads = []; alive = true;
      kill_hooks = []; dispatcher = None; faults = 0 }
  in
  Event_chan.attach t.fault_chan (fun () -> queue_notification t (drain_faults t));
  t.dispatcher <-
    Some (Proc.spawn ~name:(name ^ ".dispatch") sim (dispatcher_loop t));
  t

let faults_taken t = t.faults

let max_fault_retries = 8

let rec do_access t va kind ~attempt =
  if not t.alive then failwith (t.dname ^ ": domain is dead");
  match
    Mmu.access t.mmu ~rights:(Pdom.lookup t.pdom) ~asn:(Pdom.asn t.pdom) va
      kind
  with
  | Mmu.Ok { cost; _ } -> if cost > 0 then consume_cpu t cost; Ok ()
  | Mmu.Fault { kind = fk; cost } ->
    if attempt >= max_fault_retries then
      Error
        ( Fault.make ~va ~access:kind ~kind:fk ~sid:None ~now:(Sim.now t.sim),
          "fault persisted after retries" )
    else begin
      t.faults <- t.faults + 1;
      (* Kernel part of the fault: table walk already costed, plus
         context save, event transmission and the later activation —
         all charged to the faulting domain. *)
      consume_cpu t (cost + t.cost.Cost.context_save + t.cost.Cost.event_send);
      let pte = Mmu.lookup t.mmu ~vpn:(Addr.vpn_of_vaddr va) in
      let sid = if Pte.is_absent pte then None else Some (Pte.sid pte) in
      let fault =
        Fault.make ~va ~access:kind ~kind:fk ~sid ~now:(Sim.now t.sim)
      in
      if !Obs.enabled then begin
        Obs.Metrics.inc ~label:t.dname "fault.count";
        fault.Fault.span <-
          Some (Obs.Span.start ~now:fault.Fault.raised_at ~label:t.dname "fault")
      end;
      Queue.add fault t.fault_queue;
      Event_chan.send t.fault_chan;
      let outcome =
        if not !Inject.enabled then Sync.Ivar.read fault.Fault.resolved
        else begin
          (* The chaos layer may drop or delay the fault notification.
             The fault stays queued, so waiting with patience and
             re-kicking the channel recovers from lost deliveries;
             only a persistently dead channel fails the access. *)
          let patience = Time.of_ms_float 500.0 in
          let max_kicks = 8 in
          let rec wait kicks =
            match Sync.Ivar.read_timeout fault.Fault.resolved patience with
            | Some o -> o
            | None ->
              if kicks >= max_kicks then
                Fault.Failed "fault notification lost"
              else begin
                if !Obs.enabled then
                  Obs.Metrics.inc ~label:t.dname "fault.rekicks";
                Event_chan.send t.fault_chan;
                wait (kicks + 1)
              end
          in
          wait 0
        end
      in
      if !Obs.enabled then begin
        let now = Sim.now t.sim in
        (match fault.Fault.span with
        | Some s -> Obs.Span.finish ~now s
        | None -> ());
        Obs.Metrics.observe ~label:t.dname "fault.latency_us"
          (Time.to_us (Time.diff now fault.Fault.raised_at));
        match outcome with
        | Fault.Failed _ -> Obs.Metrics.inc ~label:t.dname "fault.failed"
        | Fault.Resolved -> ()
      end;
      (match outcome with
      | Fault.Resolved -> do_access t va kind ~attempt:(attempt + 1)
      | Fault.Failed msg -> Error (fault, msg))
    end

let try_access t va kind = do_access t va kind ~attempt:0

let access t va kind =
  match try_access t va kind with
  | Ok () -> ()
  | Error (fault, msg) -> raise (Fault.Unresolved (fault, msg))

let on_kill t f = t.kill_hooks <- f :: t.kill_hooks

let kill t =
  if t.alive then begin
    t.alive <- false;
    List.iter Proc.kill t.threads;
    (match t.dispatcher with Some d -> Proc.kill d | None -> ());
    (* Unblock any thread stuck on an unresolved fault. *)
    Queue.iter
      (fun f -> ignore (Sync.Ivar.try_fill f.Fault.resolved
                          (Fault.Failed "domain killed")))
      t.fault_queue;
    Queue.clear t.fault_queue;
    let hooks = t.kill_hooks in
    t.kill_hooks <- [];
    List.iter (fun f -> f ()) hooks
  end

(* A user thread that takes a fault its own driver cannot resolve
   (lost page contents, retired backing store, resolution livelock) is
   dead; per the self-paging contract the whole domain dies with it.
   The kill runs from a fresh process because [kill] also terminates
   the faulting thread itself. *)
let spawn_thread t ~name f =
  let body () =
    try f ()
    with Fault.Unresolved (_, _) ->
      if !Obs.enabled then
        Obs.Metrics.inc ~label:t.dname "domain.fault_deaths";
      ignore (Proc.spawn ~name:(t.dname ^ ".reaper") t.sim (fun () -> kill t))
  in
  let p = Proc.spawn ~name:(t.dname ^ "." ^ name) t.sim body in
  t.threads <- p :: t.threads;
  p
