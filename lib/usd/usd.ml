open Engine
open Sched
open Disk

type op = Read | Write

type media = { bad_lba : int; persistent : bool }
type txn_error = Media of media | Cancelled
type status = (unit, txn_error) result

type event =
  | Txn of { client : string; op : op; lba : int; nblocks : int;
             dur : Time.span }
  | Txn_error of { client : string; op : op; lba : int; nblocks : int;
                   dur : Time.span; media : media }
  | Alloc of { client : string }
  | Lax of { client : string; dur : Time.span }
  | Slack of { client : string; op : op; dur : Time.span }

type request = {
  op : op;
  lba : int;
  nblocks : int;
  completion : status Sync.Ivar.t;
}

type client = {
  edf : Edf.client;
  cqos : Qos.t;
  channel : request Io_channel.t;
  (* Lax allowance left in the current runnable stint; reset by each
     transaction and by each new allocation. *)
  mutable lax_left : Time.span;
  mutable idled : bool; (* lax expired: off the runnable queue until
                           the next allocation *)
  mutable live : bool;
  mutable txns : int;
  mutable bytes : int;
  mutable lax_used : Time.span;
  (* Instant the channel last went non-empty; None while empty. Used
     by the QoS auditor's backlogged-for-a-whole-period test. *)
  mutable backlogged_since : Time.t option;
}

type t = {
  sim : Sim.t;
  dm : Disk_model.t;
  edf : Edf.t;
  (* Streams in admission order (replenish iterates it, and the trace
     it records is compared bit-for-bit by tests), plus an id-keyed
     node table so the scheduler's per-decision member lookups are
     O(1) rather than a list scan. *)
  members : client Ilist.t;
  nodes : (int, client Ilist.node) Hashtbl.t;
  kick : Sync.Waitq.t;
  events : event Trace.t;
  laxity_enabled : bool;
  mutable running : bool;
}

let find_member t e =
  Option.map Ilist.value (Hashtbl.find_opt t.nodes e.Edf.id)

(* Feed the QoS auditor at stream period boundaries (cf. Cpu). *)
let audit_boundary t e ~unused ~boundary ~grants:_ =
  if !Obs.enabled then begin
    match find_member t e with
    | None -> ()
    | Some c ->
      let period_start = Time.add boundary (-e.Edf.period) in
      let backlogged =
        match c.backlogged_since with
        | Some since -> since <= period_start
        | None -> false
      in
      Obs.Qos_audit.usd_boundary ~now:boundary ~stream:e.Edf.cname
        ~entitled:e.Edf.slice ~got:(e.Edf.slice - unused) ~backlogged
  end

let create ?(rollover = true) ?(laxity_enabled = true) sim dm =
  let t =
    { sim; dm; edf = Edf.create ~rollover (); members = Ilist.create ();
      nodes = Hashtbl.create 64; kick = Sync.Waitq.create ();
      events = Trace.create (); laxity_enabled; running = false }
  in
  Edf.set_boundary_hook t.edf (audit_boundary t);
  t

let client_name (c : client) = c.edf.Edf.cname
let qos (c : client) = c.cqos
let txn_count (c : client) = c.txns
let bytes_moved (c : client) = c.bytes
let used_time (c : client) = c.edf.Edf.used_total
let lax_time (c : client) = c.lax_used

let trace t = t.events
let disk t = t.dm
let utilisation t = Edf.utilisation t.edf

let has_pending (c : client) = not (Io_channel.is_empty c.channel)

(* Grant period-boundary allocations; a new allocation puts an idled
   client back on the runnable queue with a fresh lax allowance. *)
let replenish t ~now =
  Ilist.iter
    (fun (c : client) ->
      if c.live then begin
        let grants = Edf.replenish t.edf ~now c.edf in
        if grants > 0 then begin
          c.idled <- false;
          c.lax_left <- c.cqos.Qos.laxity;
          Trace.record t.events now (Alloc { client = client_name c })
        end
      end)
    t.members

let execute_txn t (c : client) ~slack =
  let req = Io_channel.recv c.channel in
  if Io_channel.is_empty c.channel then c.backlogged_since <- None;
  (* Injected client stall: the client's driver domain is wedged (e.g.
     a user-level pager not responding). The disk head is not held —
     the stall burns the client's own CPU-side time and is charged to
     its disk budget, so other clients' EDF schedules are untouched. *)
  (if !Inject.enabled then
     match Inject.stall ~site:(client_name c) with
     | None -> ()
     | Some d ->
       Proc.sleep d;
       if slack then Edf.charge_slack c.edf d else Edf.charge c.edf d);
  let now = Sim.now t.sim in
  let result =
    Disk_model.service_result t.dm ~now
      ~op:(match req.op with Read -> Disk_model.Read | Write -> Disk_model.Write)
      ~lba:req.lba ~nblocks:req.nblocks
  in
  let dur = match result with Ok d -> d | Error (d, _) -> d in
  Proc.sleep dur;
  if slack then Edf.charge_slack c.edf dur else Edf.charge c.edf dur;
  c.txns <- c.txns + 1;
  c.bytes <- c.bytes + (req.nblocks * (Disk_model.params t.dm).Disk_params.block_size);
  c.lax_left <- c.cqos.Qos.laxity;
  let ev =
    match result with
    | Error (_, { Disk_model.bad_lba; persistent }) ->
      Txn_error { client = client_name c; op = req.op; lba = req.lba;
                  nblocks = req.nblocks; dur;
                  media = { bad_lba; persistent } }
    | Ok _ when slack -> Slack { client = client_name c; op = req.op; dur }
    | Ok _ ->
      Txn { client = client_name c; op = req.op; lba = req.lba;
            nblocks = req.nblocks; dur }
  in
  Trace.record t.events (Sim.now t.sim) ev;
  if !Obs.enabled then begin
    let label = client_name c in
    let nbytes =
      req.nblocks * (Disk_model.params t.dm).Disk_params.block_size
    in
    Obs.Metrics.add ~label "usd.bytes" nbytes;
    Obs.Metrics.inc ~label (if slack then "usd.slack_txns" else "usd.txns");
    (match result with
    | Error _ -> Obs.Metrics.inc ~label "usd.txn_errors"
    | Ok _ -> ());
    Obs.Metrics.observe ~label "usd.txn_us" (float_of_int dur /. 1e3)
  end;
  match result with
  | Ok _ -> Sync.Ivar.fill req.completion (Ok ())
  | Error (_, { Disk_model.bad_lba; persistent }) ->
    Sync.Ivar.fill req.completion (Error (Media { bad_lba; persistent }))

(* The earliest-deadline runnable client has no transaction pending:
   it holds the disk for up to its remaining lax allowance (bounded by
   its budget and by the next period boundary, after which the EDF
   decision must be re-taken). The wait is charged as if it were
   transaction time. *)
let lax_wait t (c : client) =
  let now = Sim.now t.sim in
  let bound = min c.lax_left c.edf.Edf.remaining in
  let bound =
    match Edf.next_deadline t.edf with
    | Some d -> min bound (max 1 (Time.diff d now))
    | None -> bound
  in
  if bound <= 0 then c.idled <- true
  else begin
    ignore (Sync.Waitq.wait_timeout t.kick bound);
    let elapsed = Time.diff (Sim.now t.sim) now in
    if elapsed > 0 then begin
      Edf.charge c.edf elapsed;
      c.lax_left <- c.lax_left - elapsed;
      c.lax_used <- c.lax_used + elapsed;
      Trace.record t.events (Sim.now t.sim)
        (Lax { client = client_name c; dur = elapsed });
      if !Obs.enabled then
        Obs.Metrics.add ~label:(client_name c) "usd.lax_ns" elapsed;
      if c.lax_left <= 0 then c.idled <- true
    end
  end

let rec scheduler_loop t =
  let now = Sim.now t.sim in
  replenish t ~now;
  let runnable e =
    match find_member t e with
    | Some c -> c.live && not c.idled
    | None -> false
  in
  (match Edf.select t.edf ~only:runnable ~now with
  | Some e ->
    let c = Option.get (find_member t e) in
    if has_pending c then execute_txn t c ~slack:false
    else if t.laxity_enabled then lax_wait t c
    else begin
      (* No laxity (ablation): plain EDF marks the client idle until
         its next periodic allocation — the short-block problem. *)
      c.idled <- true
    end
  | None ->
    (* Nobody runnable with budget: optionally give slack time to an
       x-flagged client with queued work, else sleep to the next
       period boundary or new submission. *)
    let slack_ok e =
      match find_member t e with
      | Some c -> c.live && has_pending c
      | None -> false
    in
    (match Edf.select_slack t.edf ~only:slack_ok ~now with
    | Some e -> execute_txn t (Option.get (find_member t e)) ~slack:true
    | None ->
      (match Edf.next_deadline t.edf with
      | Some d ->
        let span = max 1 (Time.diff d now) in
        ignore (Sync.Waitq.wait_timeout t.kick span)
      | None -> Sync.Waitq.wait t.kick)));
  scheduler_loop t

let ensure_running t =
  if not t.running then begin
    t.running <- true;
    ignore (Proc.spawn ~name:"usd-sched" t.sim (fun () -> scheduler_loop t))
  end

let admit t ~name ~qos ?(channel_depth = 64) () =
  match
    Edf.admit t.edf ~name ~period:qos.Qos.period ~slice:qos.Qos.slice
      ~extra:qos.Qos.extra ~now:(Sim.now t.sim) ()
  with
  | Error _ as e -> e
  | Ok e ->
    let c =
      { edf = e; cqos = qos; channel = Io_channel.create ~depth:channel_depth;
        lax_left = qos.Qos.laxity; idled = false; live = true; txns = 0;
        bytes = 0; lax_used = 0; backlogged_since = None }
    in
    let node = Ilist.make_node c in
    Ilist.push_back t.members node;
    Hashtbl.replace t.nodes e.Edf.id node;
    ensure_running t;
    Sync.Waitq.broadcast t.kick;
    Ok c

(* Fill every request still queued on a dead client's channel with a
   retired status. Runs from [retire], and again from [submit] when a
   sender that was blocked on a full channel wakes up to find the
   client retired under it — either way, each queued ivar is filled
   exactly once (each request is received exactly once). *)
let drain_cancelled (c : client) =
  while not (Io_channel.is_empty c.channel) do
    let req = Io_channel.recv c.channel in
    Sync.Ivar.fill req.completion (Error Cancelled)
  done

let retire t (c : client) =
  c.live <- false;
  Edf.remove t.edf c.edf;
  (match Hashtbl.find_opt t.nodes c.edf.Edf.id with
  | Some node ->
    Ilist.remove t.members node;
    Hashtbl.remove t.nodes c.edf.Edf.id
  | None -> ());
  (* Unblock waiters: requests still queued will never be scheduled. *)
  drain_cancelled c;
  c.backlogged_since <- None;
  Sync.Waitq.broadcast t.kick

let submit t (c : client) op ~lba ~nblocks =
  if not c.live then Error `Retired
  else begin
    let completion = Sync.Ivar.create () in
    if Io_channel.is_empty c.channel then
      c.backlogged_since <- Some (Sim.now t.sim);
    Io_channel.send c.channel { op; lba; nblocks; completion };
    (* [send] may have blocked on a full channel; if the client was
       retired while we slept, the retire-time drain ran before our
       request landed and nothing will ever service it. Cancel it (and
       anything queued behind us) so no waiter blocks forever. *)
    if not c.live then drain_cancelled c;
    Sync.Waitq.broadcast t.kick;
    Ok completion
  end

let transact t c op ~lba ~nblocks =
  match submit t c op ~lba ~nblocks with
  | Error `Retired -> Error `Retired
  | Ok completion -> (
    match Sync.Ivar.read completion with
    | Ok () -> Ok ()
    | Error (Media m) -> Error (`Media m)
    | Error Cancelled -> Error `Cancelled)

(* The [_exn] variant is for callers that have already ruled out
   media errors and retirement (pristine disks, bound clients);
   hardened callers use [transact] and match on the typed errors. *)
let transact_exn t c op ~lba ~nblocks =
  match transact t c op ~lba ~nblocks with
  | Ok () -> ()
  | Error `Retired -> failwith "Usd.transact_exn: client retired"
  | Error `Cancelled -> failwith "Usd.transact_exn: cancelled"
  | Error (`Media m) ->
    failwith
      (Printf.sprintf "Usd.transact_exn: media error at lba %d" m.bad_lba)

let pp_op ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"

let pp_event ppf = function
  | Txn { client; op; lba; nblocks; dur } ->
    Format.fprintf ppf "txn %s %a lba=%d n=%d dur=%a" client pp_op op lba
      nblocks Time.pp_span dur
  | Txn_error { client; op; lba; nblocks; dur; media } ->
    Format.fprintf ppf "txn-error %s %a lba=%d n=%d dur=%a bad=%d%s" client
      pp_op op lba nblocks Time.pp_span dur media.bad_lba
      (if media.persistent then " persistent" else "")
  | Alloc { client } -> Format.fprintf ppf "alloc %s" client
  | Lax { client; dur } ->
    Format.fprintf ppf "lax %s dur=%a" client Time.pp_span dur
  | Slack { client; op; dur } ->
    Format.fprintf ppf "slack %s %a dur=%a" client pp_op op Time.pp_span dur
