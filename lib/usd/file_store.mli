(** A minimal file store on the file-system partition.

    Nemesis keeps filing systems at user level too; for the purposes of
    this reproduction the file store only needs to provide what mapped
    stretches and the Figure-9 file-system client require: named,
    extent-based files whose block addresses the owner can obtain and
    then access through {e its own} USD channel. All data-path QoS
    therefore belongs to the client doing the I/O, not to the store. *)

open Engine

type t

type file

val create :
  ?journal_blocks:int ->
  ?journal_qos:Qos.t ->
  ?first_block:int ->
  ?nblocks:int ->
  Usd.t ->
  t
(** [journal_blocks] (default 0 = no journal) reserves that many bloks
    at the head of the region for a write-ahead intent journal of
    extent alloc/free records, with a dedicated ["fs.journal"] USD
    client under [journal_qos] (default 10 ms / 200 ms). *)

val create_file : t -> name:string -> bytes:int -> (file, string) result
(** Allocates an extent of whole pages covering [bytes]. Fails on a
    duplicate name or when space is exhausted. With a journal, the
    allocation intent is durable before the file becomes visible. *)

val find : t -> string -> file option
val delete : t -> file -> unit
val free_blocks : t -> int
val journaled : t -> bool

type remount_stats = {
  rm_replayed : int;
  rm_torn : int;
  rm_files : int;  (** files rebuilt from the journal *)
  rm_conflicts : int;  (** replayed files whose extent could not be placed *)
}

val remount : t -> (remount_stats, string) result
(** Replay the journal and rebuild the file table and free map from
    scratch. Idempotent; quarantines torn records. Must run inside a
    simulation process. Fails only when no journal is mounted. *)

val snapshot : t -> string
(** Canonical dump (free blocks + sorted file extents) for the
    recovery idempotence tests. *)

val file_name : file -> string
val file_pages : file -> int
val extent_start : file -> int

val lba_of_page : file -> int -> int
(** Raises [Invalid_argument] outside the file. *)

(** {2 Data path (caller-supplied USD client)} *)

val read_page :
  t -> file -> client:Usd.client -> page_index:int ->
  (unit, [ `Media of Usd.media | `Retired ]) result
(** Retries transient media errors a few times; [`Media] reports an
    unrecoverable error (already tallied against the recovery books),
    [`Retired] a client retired or cancelled mid-request. *)

val write_page :
  t -> file -> client:Usd.client -> page_index:int ->
  (unit, [ `Media of Usd.media | `Retired ]) result

val read_page_async :
  t -> file -> client:Usd.client -> page_index:int ->
  (Usd.status Sync.Ivar.t, [ `Retired ]) result
