open Engine
open Disk

type t = { u : Usd.t; extents : Extents.t }

type swapfile = {
  fs : t;
  ext : Extents.extent;
  client : Usd.client;
  page_blocks : int;
  mutable closed : bool;
}

let page_bytes = 8192

let create ?(first_block = 0) ?nblocks u =
  let total = (Disk_model.params (Usd.disk u)).Disk_params.nblocks in
  let nblocks = match nblocks with Some n -> n | None -> total - first_block in
  if first_block < 0 || nblocks <= 0 || first_block + nblocks > total then
    invalid_arg "Sfs.create: region out of bounds";
  { u; extents = Extents.create ~first:first_block ~len:nblocks }

let free_blocks t = Extents.free_blocks t.extents

let open_swap t ~name ~bytes ~qos =
  let block_size = (Disk_model.params (Usd.disk t.u)).Disk_params.block_size in
  let page_blocks = page_bytes / block_size in
  let pages = (bytes + page_bytes - 1) / page_bytes in
  let len = pages * page_blocks in
  match Extents.alloc t.extents ~len with
  | None -> Error (Printf.sprintf "no extent of %d blocks available" len)
  | Some ext ->
    (match Usd.admit t.u ~name ~qos () with
    | Error e ->
      Extents.free t.extents ext;
      Error e
    | Ok client -> Ok { fs = t; ext; client; page_blocks; closed = false })

let close_swap t sf =
  if not sf.closed then begin
    sf.closed <- true;
    Usd.retire t.u sf.client;
    Extents.free t.extents sf.ext
  end

let extent_blocks sf = sf.ext.Extents.len
let extent_start sf = sf.ext.Extents.start
let page_capacity sf = sf.ext.Extents.len / sf.page_blocks
let usd_client sf = sf.client

let lba_of_page sf page_index =
  if page_index < 0 || page_index >= page_capacity sf then
    invalid_arg "Sfs: page index out of extent";
  sf.ext.Extents.start + (page_index * sf.page_blocks)

let read_page_async sf ~page_index =
  Usd.submit sf.fs.u sf.client Usd.Read ~lba:(lba_of_page sf page_index)
    ~nblocks:sf.page_blocks

let write_page_async sf ~page_index =
  Usd.submit sf.fs.u sf.client Usd.Write ~lba:(lba_of_page sf page_index)
    ~nblocks:sf.page_blocks

let read_page sf ~page_index = Sync.Ivar.read (read_page_async sf ~page_index)

let write_page sf ~page_index =
  Sync.Ivar.read (write_page_async sf ~page_index)

let read_pages sf ~page_index ~npages =
  if npages <= 0 then invalid_arg "Sfs.read_pages: npages <= 0";
  if page_index + npages > page_capacity sf then
    invalid_arg "Sfs.read_pages: beyond extent";
  Sync.Ivar.read
    (Usd.submit sf.fs.u sf.client Usd.Read ~lba:(lba_of_page sf page_index)
       ~nblocks:(npages * sf.page_blocks))

let write_pages sf ~page_index ~npages =
  if npages <= 0 then invalid_arg "Sfs.write_pages: npages <= 0";
  if page_index + npages > page_capacity sf then
    invalid_arg "Sfs.write_pages: beyond extent";
  Sync.Ivar.read
    (Usd.submit sf.fs.u sf.client Usd.Write ~lba:(lba_of_page sf page_index)
       ~nblocks:(npages * sf.page_blocks))
