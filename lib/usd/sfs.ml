open Engine
open Disk

type swapfile = {
  fs : t;
  sname : string;
  mutable ext : Extents.extent;
  (* [None] = detached: the owning domain died and its USD client was
     retired, but the extent and recovered metadata stay registered so
     a restarted domain can reattach by name. *)
  mutable client : Usd.client option;
  page_blocks : int;
  data_pages : int;
  spare_pages : int;
  (* Bad-blok remapping: data page slot -> spare slot (both indices
     into the extent). Installed when a write hits a persistent media
     error; subsequent reads and writes of the page go to the spare. *)
  remap : (int, int) Hashtbl.t;
  (* Journaled assignment state: stretch page -> slot for the newest
     committed copy, and the set of slots a Commit record covers.
     Empty while no journal is mounted. *)
  assigns : (int, int) Hashtbl.t;
  committed : (int, unit) Hashtbl.t;
  mutable spares_used : int;
  mutable remapped : int;
  mutable retries : int;
  mutable lost : int;
  mutable closed : bool;
}

and t = {
  u : Usd.t;
  dm : Disk_model.t;
  region_first : int;
  region_len : int;
  block_size : int;
  mutable extents : Extents.t;
  journal : Journal.t option;
  (* Latched when an append fails for a reason other than a crash
     (region full, unrecoverable I/O): operation continues without
     durability rather than killing pagers. *)
  mutable jdegraded : bool;
  swaps : (string, swapfile) Hashtbl.t;
}

let page_bytes = 8192

(* Bounded retry-with-backoff for transient media errors. *)
let max_retries = 4
let backoff_base = Time.of_ms_float 1.0

let default_journal_qos =
  Qos.make ~period:(Time.ms 100) ~slice:(Time.ms 20) ()

let create ?(journal_blocks = 0) ?journal_qos ?(first_block = 0) ?nblocks u =
  let dm = Usd.disk u in
  let total = (Disk_model.params dm).Disk_params.nblocks in
  let nblocks = match nblocks with Some n -> n | None -> total - first_block in
  if first_block < 0 || nblocks <= 0 || first_block + nblocks > total then
    invalid_arg "Sfs.create: region out of bounds";
  if journal_blocks < 0 || journal_blocks >= nblocks then
    invalid_arg "Sfs.create: journal_blocks out of range";
  let extents = Extents.create ~first:first_block ~len:nblocks in
  let journal =
    if journal_blocks = 0 then None
    else begin
      (match Extents.alloc_at extents ~start:first_block ~len:journal_blocks with
      | Some _ -> ()
      | None -> assert false (* fresh region *));
      let qos =
        match journal_qos with Some q -> q | None -> default_journal_qos
      in
      match Usd.admit u ~name:"sfs.journal" ~qos () with
      | Error e -> invalid_arg ("Sfs.create: journal client: " ^ e)
      | Ok client ->
          Some (Journal.create ~u ~client ~first:first_block
                  ~nblocks:journal_blocks)
    end
  in
  { u; dm;
    region_first = first_block; region_len = nblocks;
    block_size = (Disk_model.params dm).Disk_params.block_size;
    extents; journal; jdegraded = false; swaps = Hashtbl.create 7 }

let free_blocks t = Extents.free_blocks t.extents
let journaled t = t.journal <> None
let journal_degraded t = t.jdegraded

(* Append an intent record, degrading (never failing the operation) on
   a full or sick journal. Only a torn append — a crash point firing —
   surfaces, because the writer is then considered dead. *)
let journal_append t ~site record : (unit, [ `Crashed ]) result =
  match t.journal with
  | None -> Ok ()
  | Some j ->
      if t.jdegraded then Ok ()
      else begin
        match Journal.append j ~site record with
        | Ok () -> Ok ()
        | Error `Crashed -> Error `Crashed
        | Error `Full | Error `Io ->
            t.jdegraded <- true;
            if !Obs.enabled then Obs.Metrics.inc "sfs.journal_degraded";
            Ok ()
      end

type open_error = [ `Exists | `Sfs of string ]

let open_error_message = function
  | `Exists -> "swap name already open"
  | `Sfs e -> e

let open_swap t ~name ~bytes ~qos ?(spare_pages = 0) () =
  if spare_pages < 0 then invalid_arg "Sfs.open_swap: spare_pages < 0";
  match Hashtbl.find_opt t.swaps name with
  | Some sf when not sf.closed -> Error `Exists
  | _ ->
    let page_blocks = page_bytes / t.block_size in
    let pages = (bytes + page_bytes - 1) / page_bytes in
    let len = (pages + spare_pages) * page_blocks in
    (match Extents.alloc t.extents ~len with
    | None ->
      Error (`Sfs (Printf.sprintf "no extent of %d blocks available" len))
    | Some ext ->
      (match Usd.admit t.u ~name ~qos () with
      | Error e ->
        Extents.free t.extents ext;
        Error (`Sfs e)
      | Ok client ->
        (* Write-ahead: the open intent is durable before the swap is
           visible; a crash right after leaves a replayable record
           matching the allocation. *)
        (match
           journal_append t ~site:name
             (Journal.Swap_open
                { name; start = ext.Extents.start; len = ext.Extents.len;
                  data_pages = pages; spare_pages })
         with
        | Error `Crashed ->
          Usd.retire t.u client;
          Extents.free t.extents ext;
          Error (`Sfs "crashed while journaling swap open")
        | Ok () ->
          let sf =
            { fs = t; sname = name; ext; client = Some client; page_blocks;
              data_pages = pages; spare_pages;
              remap = Hashtbl.create 7;
              assigns = Hashtbl.create 64; committed = Hashtbl.create 64;
              spares_used = 0; remapped = 0; retries = 0; lost = 0;
              closed = false }
          in
          Hashtbl.replace t.swaps name sf;
          Ok sf)))

let close_swap t sf =
  if not sf.closed then begin
    (* The close intent is journaled but a crash here is ignored: the
       closer is dying anyway and replay then conservatively keeps the
       swap open. *)
    (match journal_append t ~site:sf.sname
             (Journal.Swap_close { name = sf.sname })
     with
    | Ok () | Error `Crashed -> ());
    sf.closed <- true;
    (match sf.client with Some c -> Usd.retire t.u c | None -> ());
    sf.client <- None;
    Extents.free t.extents sf.ext;
    Hashtbl.remove t.swaps sf.sname
  end

let detach_swap t sf =
  if not sf.closed then begin
    (match sf.client with Some c -> Usd.retire t.u c | None -> ());
    sf.client <- None
  end

type reattach_error = [ `Unknown | `Attached | `Sfs of string ]

let committed_pairs sf =
  Hashtbl.fold
    (fun p s acc -> if Hashtbl.mem sf.committed s then (p, s) :: acc else acc)
    sf.assigns []
  |> List.sort compare

let reattach_swap t ~name ~qos =
  match Hashtbl.find_opt t.swaps name with
  | None -> Error `Unknown
  | Some sf when sf.closed -> Error `Unknown
  | Some sf when sf.client <> None -> Error `Attached
  | Some sf -> (
      match Usd.admit t.u ~name ~qos () with
      | Error e -> Error (`Sfs e)
      | Ok client ->
          sf.client <- Some client;
          Ok (sf, committed_pairs sf))

let find_swap t name =
  match Hashtbl.find_opt t.swaps name with
  | Some sf when not sf.closed -> Some sf
  | _ -> None

let extent_blocks sf = sf.ext.Extents.len
let extent_start sf = sf.ext.Extents.start
let page_capacity sf = sf.data_pages
let swap_name sf = sf.sname
let attached sf = sf.client <> None
let swap_journaled sf = sf.fs.journal <> None

(* Typed error (PR 5 convention) replacing the failwith escape: a
   detached swapfile has no USD client until reattached. The printer
   renders the legacy message. *)
type client_error = Detached of { name : string }

let pp_client_error ppf (Detached { name }) =
  Format.fprintf ppf "Sfs.usd_client: %s is detached" name

let client_error_message e = Format.asprintf "%a" pp_client_error e

let usd_client sf =
  match sf.client with
  | Some c -> Ok c
  | None -> Error (Detached { name = sf.sname })

let retry_count sf = sf.retries
let remap_count sf = sf.remapped
let lost_count sf = sf.lost

(* Slot -> LBA, through the remap table. Spare slots live at the tail
   of the extent, past the data pages. *)
let slot_of_page sf page_index =
  match Hashtbl.find_opt sf.remap page_index with
  | Some spare -> spare
  | None -> page_index

let lba_of_page sf page_index =
  if page_index < 0 || page_index >= page_capacity sf then
    invalid_arg "Sfs: page index out of extent";
  sf.ext.Extents.start + (slot_of_page sf page_index * sf.page_blocks)

let slot_committed sf slot = Hashtbl.mem sf.committed slot

(* -- durable stamps ---------------------------------------------------

   Each fully written page slot carries a "name:slot" stamp at its
   first LBA in the Disk_model contents store — the simulation's stand-
   in for the page's payload. A torn write stamps only the slots its
   persisted prefix covers and erases the one it cut through, so a
   remount can check exactly which committed slots still hold data. *)

let stamp_value sf slot = Printf.sprintf "%s:%d" sf.sname slot

let stamp_slot sf slot =
  Disk_model.store sf.fs.dm ~lba:(lba_of_page sf slot) (stamp_value sf slot)

let unstamp_slot sf slot = Disk_model.erase sf.fs.dm ~lba:(lba_of_page sf slot)

let slot_ok sf ~slot =
  Disk_model.load sf.fs.dm ~lba:(lba_of_page sf slot)
  = Some (stamp_value sf slot)

(* Apply the durable effect of a write of [npages] slots from
   [page_index] of which only the first [k] bloks persisted. *)
let apply_torn sf ~page_index ~npages ~k =
  let whole = k / sf.page_blocks in
  for i = 0 to npages - 1 do
    if i < whole then stamp_slot sf (page_index + i)
    else if i = whole && k mod sf.page_blocks > 0 then
      unstamp_slot sf (page_index + i)
  done

(* Consult the crash layer before a durable data write. Crash points
   only exist under a mounted journal (the crash-consistency model);
   without one the write path is bit-for-bit the seed behaviour. *)
let crash_check sf ~page_index ~npages =
  match sf.fs.journal with
  | None -> None
  | Some _ ->
      if not !Inject.enabled then None
      else
        let k =
          Inject.crash_write
            ~now:(Sim.now (Proc.current_sim ()))
            ~site:sf.sname ~lba:(lba_of_page sf page_index)
            ~nblocks:(npages * sf.page_blocks)
        in
        (match k with
        | Some k -> apply_torn sf ~page_index ~npages ~k
        | None -> ());
        k

let stamp_write sf ~page_index ~npages =
  if sf.fs.journal <> None then
    for i = page_index to page_index + npages - 1 do
      stamp_slot sf i
    done

type io_error = [ `Lost_pages of int list | `Retired | `Crashed ]

let op_class = function Usd.Read -> "sfs.read" | Usd.Write -> "sfs.write"

(* Journal a spare remap as an intent — durable before the remap table
   mutates — then install it. *)
let journal_remap sf page_index =
  if sf.spares_used >= sf.spare_pages then `None
  else begin
    let spare = sf.data_pages + sf.spares_used in
    match
      journal_append sf.fs ~site:sf.sname
        (Journal.Remap { name = sf.sname; slot = page_index; spare })
    with
    | Error `Crashed -> `Crashed
    | Ok () ->
        sf.spares_used <- sf.spares_used + 1;
        Hashtbl.replace sf.remap page_index spare;
        sf.remapped <- sf.remapped + 1;
        `Ok spare
  end

(* Single-page transaction with the full recovery ladder. Every media
   error coming back is answered by exactly one accounting note:
   transient with retries left -> retry (with exponential backoff);
   persistent write with a spare left -> remap and rewrite; anything
   else -> the page's contents are gone. *)
let rw_page sf op ~page_index =
  match sf.client with
  | None -> Error `Retired
  | Some client ->
    let rec go ~attempt =
      match
        (if op = Usd.Write then crash_check sf ~page_index ~npages:1
         else None)
      with
      | Some _ -> Error `Crashed
      | None ->
      match
        Usd.transact sf.fs.u client op ~lba:(lba_of_page sf page_index)
          ~nblocks:sf.page_blocks
      with
      | Ok () ->
        if op = Usd.Write then stamp_write sf ~page_index ~npages:1;
        Ok ()
      | Error `Retired | Error `Cancelled -> Error `Retired
      | Error (`Media m) ->
        if (not m.Usd.persistent) && attempt < max_retries then begin
          sf.retries <- sf.retries + 1;
          Inject.note_retried (op_class op);
          Proc.sleep (backoff_base * (1 lsl attempt));
          go ~attempt:(attempt + 1)
        end
        else if m.Usd.persistent && op = Usd.Write then begin
          match journal_remap sf page_index with
          | `Ok _ ->
            Inject.note_remapped (op_class op);
            (* Fresh attempt budget at the spare location. *)
            go ~attempt:0
          | `Crashed -> Error `Crashed
          | `None ->
            (* Spares dry. The caller still holds the data and may
               re-site the page elsewhere (Sd_paged re-bloks), so the
               final answer to this error — remap or kill — is the
               caller's to account. *)
            sf.lost <- sf.lost + 1;
            Error (`Lost_pages [ page_index ])
        end
        else begin
          sf.lost <- sf.lost + 1;
          (match op with
          | Usd.Read ->
            (* Persistent read error (the sector under the data is
               gone) or a marginal sector that outlasted the retry
               budget: no layer above can conjure the data back. *)
            Inject.note_killed (op_class op)
          | Usd.Write ->
            (* Transient-exhausted write: as above, the caller decides
               and accounts. *)
            ());
          Error (`Lost_pages [ page_index ])
        end
    in
    go ~attempt:0

(* Multi-page transaction: tried as one coalesced transfer; if any
   blok in the span errors, degrade to page-at-a-time so healthy pages
   still move and only genuinely bad ones are lost. *)
let rw_pages sf op ~page_index ~npages =
  if npages <= 0 then invalid_arg "Sfs: npages <= 0";
  if page_index + npages > page_capacity sf then
    invalid_arg "Sfs: beyond extent";
  match sf.client with
  | None -> Error `Retired
  | Some client ->
    let coalesced_ok =
      (* A remapped page breaks contiguity; go page-at-a-time. *)
      npages = 1
      || not
           (List.exists
              (fun i -> Hashtbl.mem sf.remap i)
              (List.init npages (fun i -> page_index + i)))
    in
    let split () =
      let lost = ref [] in
      let failed = ref None in
      for i = page_index to page_index + npages - 1 do
        if !failed = None then
          match rw_page sf op ~page_index:i with
          | Ok () -> ()
          | Error `Retired -> failed := Some `Retired
          | Error `Crashed -> failed := Some `Crashed
          | Error (`Lost_pages l) -> lost := !lost @ l
      done;
      match !failed with
      | Some e -> Error e
      | None ->
        (match !lost with [] -> Ok () | l -> Error (`Lost_pages l))
    in
    if npages = 1 then rw_page sf op ~page_index
    else if not coalesced_ok then split ()
    else
      match
        (if op = Usd.Write then crash_check sf ~page_index ~npages
         else None)
      with
      | Some _ -> Error `Crashed
      | None ->
      match
        Usd.transact sf.fs.u client op ~lba:(lba_of_page sf page_index)
          ~nblocks:(npages * sf.page_blocks)
      with
      | Ok () ->
        if op = Usd.Write then stamp_write sf ~page_index ~npages;
        Ok ()
      | Error `Retired | Error `Cancelled -> Error `Retired
      | Error (`Media _) ->
        (* One injected error answered by one degradation: the coalesced
           transaction is abandoned and re-issued page-at-a-time. *)
        Inject.note_degraded (op_class op);
        split ()

let read_page sf ~page_index = rw_page sf Usd.Read ~page_index
let write_page sf ~page_index = rw_page sf Usd.Write ~page_index
let read_pages sf ~page_index ~npages = rw_pages sf Usd.Read ~page_index ~npages
let write_pages sf ~page_index ~npages =
  rw_pages sf Usd.Write ~page_index ~npages

(* A committing write: the data transaction, then — under a journal —
   one Commit record that atomically makes the listed (stretch page,
   slot) assignments durable and retires the slots they supersede. The
   record is appended only after the data write succeeded, so a
   record's presence certifies its data; a torn data write leaves no
   record and claims nothing. *)
let write_pages_commit sf ~page_index ~npages ~pages ~retire =
  match rw_pages sf Usd.Write ~page_index ~npages with
  | Error _ as e -> e
  | Ok () ->
    if sf.fs.journal = None then Ok ()
    else begin
      match
        journal_append sf.fs ~site:sf.sname
          (Journal.Commit { name = sf.sname; pairs = pages; retire })
      with
      | Error `Crashed -> Error `Crashed
      | Ok () ->
        List.iter (fun (_, old) -> Hashtbl.remove sf.committed old) retire;
        List.iter
          (fun (p, s) ->
            Hashtbl.replace sf.assigns p s;
            Hashtbl.replace sf.committed s ())
          pages;
        Ok ()
    end

let read_page_async sf ~page_index =
  match sf.client with
  | None -> Error `Retired
  | Some client ->
    Usd.submit sf.fs.u client Usd.Read ~lba:(lba_of_page sf page_index)
      ~nblocks:sf.page_blocks

let write_page_async sf ~page_index =
  match sf.client with
  | None -> Error `Retired
  | Some client ->
    Usd.submit sf.fs.u client Usd.Write ~lba:(lba_of_page sf page_index)
      ~nblocks:sf.page_blocks

(* -- remount / recovery ----------------------------------------------- *)

type remount_stats = {
  rm_replayed : int;
  rm_torn : int;
  rm_scanned : int;
  rm_swaps : int;  (** detached swaps rebuilt from the journal *)
  rm_conflicts : int;  (** replayed swaps whose extent could not be placed *)
}

(* Journal-replay image of one open swap. *)
type rswap = {
  rs_start : int;
  rs_len : int;
  rs_data_pages : int;
  rs_spare_pages : int;
  rs_remap : (int, int) Hashtbl.t;
  rs_assigns : (int, int) Hashtbl.t;
  rs_committed : (int, unit) Hashtbl.t;
  mutable rs_spares_used : int;
  mutable rs_remapped : int;
}

let remount t =
  match t.journal with
  | None -> Error "Sfs.remount: no journal mounted"
  | Some j ->
    let records, rp = Journal.replay j in
    (* Replay the metadata state machine. *)
    let open_swaps : (string, rswap) Hashtbl.t = Hashtbl.create 7 in
    List.iter
      (fun r ->
        match r with
        | Journal.Swap_open { name; start; len; data_pages; spare_pages } ->
          Hashtbl.replace open_swaps name
            { rs_start = start; rs_len = len;
              rs_data_pages = data_pages; rs_spare_pages = spare_pages;
              rs_remap = Hashtbl.create 7;
              rs_assigns = Hashtbl.create 64;
              rs_committed = Hashtbl.create 64;
              rs_spares_used = 0; rs_remapped = 0 }
        | Journal.Swap_close { name } -> Hashtbl.remove open_swaps name
        | Journal.Remap { name; slot; spare } ->
          (match Hashtbl.find_opt open_swaps name with
          | None -> ()
          | Some rs ->
            Hashtbl.replace rs.rs_remap slot spare;
            rs.rs_spares_used <- rs.rs_spares_used + 1;
            rs.rs_remapped <- rs.rs_remapped + 1)
        | Journal.Commit { name; pairs; retire } ->
          (match Hashtbl.find_opt open_swaps name with
          | None -> ()
          | Some rs ->
            List.iter
              (fun (_, old) -> Hashtbl.remove rs.rs_committed old)
              retire;
            List.iter
              (fun (p, s) ->
                Hashtbl.replace rs.rs_assigns p s;
                Hashtbl.replace rs.rs_committed s ())
              pairs)
        | Journal.Ext_alloc _ | Journal.Ext_free _ ->
          (* File-store records never land in the SFS journal. *)
          ())
      records;
    (* Rebuild the free map from scratch: journal region first, then
       every surviving extent at its recorded place. *)
    let extents = Extents.create ~first:t.region_first ~len:t.region_len in
    ignore
      (Extents.alloc_at extents ~start:(Journal.first_block j)
         ~len:(Journal.nblocks j));
    let conflicts = ref 0 in
    let rebuilt = ref 0 in
    let place ~start ~len =
      match Extents.alloc_at extents ~start ~len with
      | Some _ -> true
      | None ->
        incr conflicts;
        false
    in
    (* Live attached swaps (their owners never crashed) keep their heap
       structures — only their extents are re-placed in the fresh map. *)
    let keep = Hashtbl.create 7 in
    Hashtbl.iter
      (fun name sf ->
        if sf.client <> None && not sf.closed then begin
          ignore
            (place ~start:sf.ext.Extents.start ~len:sf.ext.Extents.len);
          Hashtbl.replace keep name sf
        end)
      t.swaps;
    (* Detached or unknown swaps are adopted from the journal image. *)
    Hashtbl.iter
      (fun name rs ->
        if not (Hashtbl.mem keep name) then begin
          if place ~start:rs.rs_start ~len:rs.rs_len then begin
            incr rebuilt;
            let sf =
              { fs = t; sname = name;
                ext = { Extents.start = rs.rs_start; len = rs.rs_len };
                client = None;
                page_blocks = page_bytes / t.block_size;
                data_pages = rs.rs_data_pages;
                spare_pages = rs.rs_spare_pages;
                remap = rs.rs_remap;
                assigns = rs.rs_assigns; committed = rs.rs_committed;
                spares_used = rs.rs_spares_used;
                remapped = rs.rs_remapped;
                retries = 0; lost = 0; closed = false }
            in
            Hashtbl.replace keep name sf
          end
        end)
      open_swaps;
    Hashtbl.reset t.swaps;
    Hashtbl.iter (fun name sf -> Hashtbl.replace t.swaps name sf) keep;
    t.extents <- extents;
    t.jdegraded <- false;
    if !Obs.enabled then Obs.Metrics.inc "sfs.remounts";
    Ok
      { rm_replayed = rp.Journal.rp_replayed;
        rm_torn = rp.Journal.rp_torn;
        rm_scanned = rp.Journal.rp_scanned;
        rm_swaps = !rebuilt;
        rm_conflicts = !conflicts }

(* Canonical dump of the recovered state — free map, per-swap remap /
   assignment / commit tables — used by the idempotence tests: two
   replays of the same journal must produce identical snapshots. *)
let snapshot t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "free=%d\n" (free_blocks t));
  let sorted_pairs h =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare
  in
  Hashtbl.fold (fun name sf acc -> (name, sf) :: acc) t.swaps []
  |> List.sort compare
  |> List.iter (fun (name, sf) ->
         Buffer.add_string b
           (Printf.sprintf "swap %s start=%d len=%d dp=%d sp=%d used=%d%s\n"
              name sf.ext.Extents.start sf.ext.Extents.len sf.data_pages
              sf.spare_pages sf.spares_used
              (if sf.client = None then " detached" else ""));
         List.iter
           (fun (s, sp) ->
             Buffer.add_string b (Printf.sprintf "  remap %d->%d\n" s sp))
           (sorted_pairs sf.remap);
         List.iter
           (fun (p, s) ->
             Buffer.add_string b
               (Printf.sprintf "  page %d slot %d%s\n" p s
                  (if Hashtbl.mem sf.committed s then " committed" else "")))
           (sorted_pairs sf.assigns));
  Buffer.contents b
