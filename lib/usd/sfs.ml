open Engine
open Disk

type t = { u : Usd.t; extents : Extents.t }

type swapfile = {
  fs : t;
  ext : Extents.extent;
  client : Usd.client;
  page_blocks : int;
  data_pages : int;
  spare_pages : int;
  (* Bad-blok remapping: data page slot -> spare slot (both indices
     into the extent). Installed when a write hits a persistent media
     error; subsequent reads and writes of the page go to the spare. *)
  remap : (int, int) Hashtbl.t;
  mutable spares_used : int;
  mutable remapped : int;
  mutable retries : int;
  mutable lost : int;
  mutable closed : bool;
}

let page_bytes = 8192

(* Bounded retry-with-backoff for transient media errors. *)
let max_retries = 4
let backoff_base = Time.of_ms_float 1.0

let create ?(first_block = 0) ?nblocks u =
  let total = (Disk_model.params (Usd.disk u)).Disk_params.nblocks in
  let nblocks = match nblocks with Some n -> n | None -> total - first_block in
  if first_block < 0 || nblocks <= 0 || first_block + nblocks > total then
    invalid_arg "Sfs.create: region out of bounds";
  { u; extents = Extents.create ~first:first_block ~len:nblocks }

let free_blocks t = Extents.free_blocks t.extents

let open_swap t ~name ~bytes ~qos ?(spare_pages = 0) () =
  if spare_pages < 0 then invalid_arg "Sfs.open_swap: spare_pages < 0";
  let block_size = (Disk_model.params (Usd.disk t.u)).Disk_params.block_size in
  let page_blocks = page_bytes / block_size in
  let pages = (bytes + page_bytes - 1) / page_bytes in
  let len = (pages + spare_pages) * page_blocks in
  match Extents.alloc t.extents ~len with
  | None -> Error (Printf.sprintf "no extent of %d blocks available" len)
  | Some ext ->
    (match Usd.admit t.u ~name ~qos () with
    | Error e ->
      Extents.free t.extents ext;
      Error e
    | Ok client ->
      Ok
        { fs = t; ext; client; page_blocks; data_pages = pages;
          spare_pages; remap = Hashtbl.create 7; spares_used = 0;
          remapped = 0; retries = 0; lost = 0; closed = false })

let close_swap t sf =
  if not sf.closed then begin
    sf.closed <- true;
    Usd.retire t.u sf.client;
    Extents.free t.extents sf.ext
  end

let extent_blocks sf = sf.ext.Extents.len
let extent_start sf = sf.ext.Extents.start
let page_capacity sf = sf.data_pages
let usd_client sf = sf.client
let retry_count sf = sf.retries
let remap_count sf = sf.remapped
let lost_count sf = sf.lost

(* Slot -> LBA, through the remap table. Spare slots live at the tail
   of the extent, past the data pages. *)
let slot_of_page sf page_index =
  match Hashtbl.find_opt sf.remap page_index with
  | Some spare -> spare
  | None -> page_index

let lba_of_page sf page_index =
  if page_index < 0 || page_index >= page_capacity sf then
    invalid_arg "Sfs: page index out of extent";
  sf.ext.Extents.start + (slot_of_page sf page_index * sf.page_blocks)

let try_remap sf page_index =
  if sf.spares_used >= sf.spare_pages then None
  else begin
    let spare = sf.data_pages + sf.spares_used in
    sf.spares_used <- sf.spares_used + 1;
    Hashtbl.replace sf.remap page_index spare;
    sf.remapped <- sf.remapped + 1;
    Some spare
  end

type io_error = [ `Lost_pages of int list | `Retired ]

let op_class = function Usd.Read -> "sfs.read" | Usd.Write -> "sfs.write"

(* Single-page transaction with the full recovery ladder. Every media
   error coming back is answered by exactly one accounting note:
   transient with retries left -> retry (with exponential backoff);
   persistent write with a spare left -> remap and rewrite; anything
   else -> the page's contents are gone. *)
let rw_page sf op ~page_index =
  let rec go ~attempt =
    match
      Usd.transact sf.fs.u sf.client op ~lba:(lba_of_page sf page_index)
        ~nblocks:sf.page_blocks
    with
    | Ok () -> Ok ()
    | Error `Retired | Error `Cancelled -> Error `Retired
    | Error (`Media m) ->
      if (not m.Usd.persistent) && attempt < max_retries then begin
        sf.retries <- sf.retries + 1;
        Inject.note_retried (op_class op);
        Proc.sleep (backoff_base * (1 lsl attempt));
        go ~attempt:(attempt + 1)
      end
      else if m.Usd.persistent && op = Usd.Write then begin
        match try_remap sf page_index with
        | Some _ ->
          Inject.note_remapped (op_class op);
          (* Fresh attempt budget at the spare location. *)
          go ~attempt:0
        | None ->
          (* Spares dry. The caller still holds the data and may
             re-site the page elsewhere (Sd_paged re-bloks), so the
             final answer to this error — remap or kill — is the
             caller's to account. *)
          sf.lost <- sf.lost + 1;
          Error (`Lost_pages [ page_index ])
      end
      else begin
        sf.lost <- sf.lost + 1;
        (match op with
        | Usd.Read ->
          (* Persistent read error (the sector under the data is
             gone) or a marginal sector that outlasted the retry
             budget: no layer above can conjure the data back. *)
          Inject.note_killed (op_class op)
        | Usd.Write ->
          (* Transient-exhausted write: as above, the caller decides
             and accounts. *)
          ());
        Error (`Lost_pages [ page_index ])
      end
  in
  go ~attempt:0

(* Multi-page transaction: tried as one coalesced transfer; if any
   blok in the span errors, degrade to page-at-a-time so healthy pages
   still move and only genuinely bad ones are lost. *)
let rw_pages sf op ~page_index ~npages =
  if npages <= 0 then invalid_arg "Sfs: npages <= 0";
  if page_index + npages > page_capacity sf then
    invalid_arg "Sfs: beyond extent";
  let coalesced_ok =
    (* A remapped page breaks contiguity; go page-at-a-time. *)
    npages = 1
    || not
         (List.exists
            (fun i -> Hashtbl.mem sf.remap i)
            (List.init npages (fun i -> page_index + i)))
  in
  let split () =
    let lost = ref [] in
    let retired = ref false in
    for i = page_index to page_index + npages - 1 do
      if not !retired then
        match rw_page sf op ~page_index:i with
        | Ok () -> ()
        | Error `Retired -> retired := true
        | Error (`Lost_pages l) -> lost := !lost @ l
    done;
    if !retired then Error `Retired
    else match !lost with [] -> Ok () | l -> Error (`Lost_pages l)
  in
  if npages = 1 then rw_page sf op ~page_index
  else if not coalesced_ok then split ()
  else
    match
      Usd.transact sf.fs.u sf.client op ~lba:(lba_of_page sf page_index)
        ~nblocks:(npages * sf.page_blocks)
    with
    | Ok () -> Ok ()
    | Error `Retired | Error `Cancelled -> Error `Retired
    | Error (`Media _) ->
      (* One injected error answered by one degradation: the coalesced
         transaction is abandoned and re-issued page-at-a-time. *)
      Inject.note_degraded (op_class op);
      split ()

let read_page sf ~page_index = rw_page sf Usd.Read ~page_index
let write_page sf ~page_index = rw_page sf Usd.Write ~page_index
let read_pages sf ~page_index ~npages = rw_pages sf Usd.Read ~page_index ~npages
let write_pages sf ~page_index ~npages =
  rw_pages sf Usd.Write ~page_index ~npages

let read_page_async sf ~page_index =
  Usd.submit sf.fs.u sf.client Usd.Read ~lba:(lba_of_page sf page_index)
    ~nblocks:sf.page_blocks

let write_page_async sf ~page_index =
  Usd.submit sf.fs.u sf.client Usd.Write ~lba:(lba_of_page sf page_index)
    ~nblocks:sf.page_blocks
