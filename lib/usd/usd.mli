(** The User-Safe Disk: Atropos EDF scheduling of disk transactions
    with laxity and roll-over accounting.

    Each client holds a {!Qos.t} guarantee [(p, s, x, l)]. A scheduler
    thread in the USD domain repeatedly picks the runnable client with
    the earliest deadline and performs a single transaction on its
    behalf; the measured duration is deducted from the client's
    remaining time. When the remaining time goes non-positive the
    client moves to the wait queue until its deadline, at which point
    it receives a new allocation [s] (minus any overrun deficit — the
    roll-over scheme) and a new deadline one period on.

    {b Laxity}: a runnable client with no transaction pending would,
    under plain EDF, be marked idle and ignored until its next
    allocation (the short-block problem — paging clients have at most
    one request outstanding). Instead the client holds its place on the
    runnable queue for up to [l], the waiting being charged exactly as
    if it were transaction time; only when the lax allowance runs dry
    is the client idled until its next allocation.

    Every transaction, new allocation and lax charge is recorded in a
    trace — the data behind the scheduler traces in Figures 7 and 8. *)

open Engine
open Disk

type op = Read | Write

type media = { bad_lba : int; persistent : bool }
(** An injected media error surfaced to the client. *)

type txn_error =
  | Media of media
  | Cancelled  (** client was retired with the request still queued *)

type status = (unit, txn_error) result

type event =
  | Txn of { client : string; op : op; lba : int; nblocks : int;
             dur : Time.span }
  | Txn_error of { client : string; op : op; lba : int; nblocks : int;
                   dur : Time.span; media : media }
  | Alloc of { client : string }
  | Lax of { client : string; dur : Time.span }
  | Slack of { client : string; op : op; dur : Time.span }

type t

type client

val create :
  ?rollover:bool -> ?laxity_enabled:bool -> Sim.t -> Disk_model.t -> t
(** [rollover] (default true) and [laxity_enabled] (default true) exist
    for the A-rollover and A-laxity ablations. *)

val admit :
  t -> name:string -> qos:Qos.t -> ?channel_depth:int -> unit ->
  (client, string) result
(** Admission control refuses the client if Σ s/p would exceed 1.
    [channel_depth] (default 64) sizes the request IO channel. *)

val retire : t -> client -> unit

val submit :
  t -> client -> op -> lba:int -> nblocks:int ->
  (status Sync.Ivar.t, [ `Retired ]) result
(** Enqueue a transaction on the client's IO channel (blocking if the
    channel is full) and return the completion ivar. A retired client
    gets [Error `Retired] instead of an exception: user-level pagers
    race retirement and must be able to handle the loss. If the client
    is retired while the submitter is blocked on a full channel, the
    returned ivar is filled with [Cancelled] — every pending
    submission resolves, no waiter blocks forever. *)

val transact :
  t -> client -> op -> lba:int -> nblocks:int ->
  (unit, [ `Media of media | `Cancelled | `Retired ]) result
(** [submit] then wait for completion, with the two error layers
    flattened into one polymorphic variant. *)

val transact_exn : t -> client -> op -> lba:int -> nblocks:int -> unit
(** [transact] for callers with no recovery story; raises [Failure] on
    any error (unreachable while {!Inject} is disarmed and the client
    is never retired mid-flight). *)

val client_name : client -> string
val qos : client -> Qos.t
val txn_count : client -> int
val bytes_moved : client -> int
val used_time : client -> Time.span
val lax_time : client -> Time.span

val trace : t -> event Trace.t
val disk : t -> Disk_model.t
val utilisation : t -> float

val pp_event : Format.formatter -> event -> unit
