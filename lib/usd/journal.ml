open Engine
open Disk

type record =
  | Ext_alloc of { start : int; len : int; tag : string }
  | Ext_free of { start : int; len : int; tag : string }
  | Swap_open of {
      name : string;
      start : int;
      len : int;
      data_pages : int;
      spare_pages : int;
    }
  | Swap_close of { name : string }
  | Remap of { name : string; slot : int; spare : int }
  | Commit of {
      name : string;
      pairs : (int * int) list;
      retire : (int * int) list;
    }

type t = {
  u : Usd.t;
  client : Usd.client;
  dm : Disk_model.t;
  first : int;
  nblocks : int;
  block_size : int;
  mutable head : int;
  mutable seq : int;
  mutable full : bool;
  mutable appended : int;
  (* Appends block in [Usd.transact]; without mutual exclusion two
     concurrent appenders would read the same head, write the same
     bloks and leave holes when both advance it. *)
  lock : Sync.Semaphore.t;
}

let create ~u ~client ~first ~nblocks =
  if nblocks <= 0 then invalid_arg "Journal.create: empty region";
  let dm = Usd.disk u in
  { u; client; dm;
    first; nblocks;
    block_size = (Disk_model.params dm).Disk_params.block_size;
    head = 0; seq = 0; full = false; appended = 0;
    lock = Sync.Semaphore.create 1 }

let first_block t = t.first
let nblocks t = t.nblocks
let head t = t.head
let appended t = t.appended
let full t = t.full

(* -- serialization ---------------------------------------------------- *)

(* Names become the final, rest-of-tokens-free field of their record,
   so they must not contain the separator. *)
let check_name n =
  if n = "" || String.contains n ' ' || String.contains n '\n' then
    invalid_arg ("Journal: bad name " ^ String.escaped n)

let pairs_to_string ps =
  String.concat " "
    (string_of_int (List.length ps)
    :: List.map (fun (p, s) -> Printf.sprintf "%d:%d" p s) ps)

let body_of_record = function
  | Ext_alloc { start; len; tag } ->
      check_name tag;
      Printf.sprintf "ealloc %d %d %s" start len tag
  | Ext_free { start; len; tag } ->
      check_name tag;
      Printf.sprintf "efree %d %d %s" start len tag
  | Swap_open { name; start; len; data_pages; spare_pages } ->
      check_name name;
      Printf.sprintf "sopen %d %d %d %d %s" start len data_pages spare_pages
        name
  | Swap_close { name } ->
      check_name name;
      "sclose " ^ name
  | Remap { name; slot; spare } ->
      check_name name;
      Printf.sprintf "remap %d %d %s" slot spare name
  | Commit { name; pairs; retire } ->
      check_name name;
      Printf.sprintf "commit %s %s %s" (pairs_to_string pairs)
        (pairs_to_string retire) name

(* Typed parse errors (PR 5 convention): a malformed record body is
   data, not a programming error — replay quarantines it by treating
   the body as invalid. The printers render the legacy failwith
   strings. *)
type parse_error =
  | Bad_pair of string  (** token is not a "page:slot" pair *)
  | Missing_pairs  (** the record body ended short of its pair count *)

let pp_parse_error ppf = function
  | Bad_pair _ -> Format.pp_print_string ppf "pair"
  | Missing_pairs -> Format.pp_print_string ppf "pairs"

let parse_error_message e = Format.asprintf "%a" pp_parse_error e

let pair_of_token tok =
  match String.index_opt tok ':' with
  | None -> Error (Bad_pair tok)
  | Some i -> (
      match
        ( int_of_string_opt (String.sub tok 0 i),
          int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1))
        )
      with
      | Some p, Some s -> Ok (p, s)
      | _ -> Error (Bad_pair tok))

(* Take [n] "p:s" tokens off the front. *)
let rec take_pairs n toks =
  if n = 0 then Ok ([], toks)
  else
    match toks with
    | [] -> Error Missing_pairs
    | tok :: rest -> (
        match pair_of_token tok with
        | Error e -> Error e
        | Ok p -> (
            match take_pairs (n - 1) rest with
            | Error e -> Error e
            | Ok (ps, rest) -> Ok (p :: ps, rest)))

let record_of_body body =
  try
    match String.split_on_char ' ' body with
    | [ "ealloc"; start; len; tag ] ->
        Some
          (Ext_alloc
             { start = int_of_string start; len = int_of_string len; tag })
    | [ "efree"; start; len; tag ] ->
        Some
          (Ext_free
             { start = int_of_string start; len = int_of_string len; tag })
    | [ "sopen"; start; len; dp; sp; name ] ->
        Some
          (Swap_open
             { name;
               start = int_of_string start;
               len = int_of_string len;
               data_pages = int_of_string dp;
               spare_pages = int_of_string sp })
    | [ "sclose"; name ] -> Some (Swap_close { name })
    | [ "remap"; slot; spare; name ] ->
        Some
          (Remap
             { name; slot = int_of_string slot; spare = int_of_string spare })
    | "commit" :: np :: rest -> (
        match take_pairs (int_of_string np) rest with
        | Error _ -> None
        | Ok (pairs, rest) -> (
            match rest with
            | nr :: rest -> (
                match take_pairs (int_of_string nr) rest with
                | Error _ -> None
                | Ok (retire, rest) -> (
                    match rest with
                    | [ name ] -> Some (Commit { name; pairs; retire })
                    | _ -> None))
            | [] -> None))
    | _ -> None
  with _ -> None

(* FNV-1a 64-bit over sequence number and body: cheap, deterministic,
   and plenty to detect a record assembled from bloks of two different
   appends after a torn write. *)
let checksum ~seq body =
  let h = ref 0xcbf29ce484222325L in
  let feed c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x1b3L
  in
  String.iter feed (string_of_int seq);
  feed ' ';
  String.iter feed body;
  Printf.sprintf "%Lx" !h

let magic = "NJ1"

let encode ~seq body =
  Printf.sprintf "%s %d %d %s %s" magic seq (String.length body)
    (checksum ~seq body) body

(* Header fields of an encoded record: magic, seq, body length,
   checksum, then the body. Returns (seq, body_len, crc, body_offset)
   if the prefix parses. *)
let parse_header s =
  try
    let sp1 = String.index s ' ' in
    let sp2 = String.index_from s (sp1 + 1) ' ' in
    let sp3 = String.index_from s (sp2 + 1) ' ' in
    let sp4 = String.index_from s (sp3 + 1) ' ' in
    if String.sub s 0 sp1 <> magic then None
    else
      Some
        ( int_of_string (String.sub s (sp1 + 1) (sp2 - sp1 - 1)),
          int_of_string (String.sub s (sp2 + 1) (sp3 - sp2 - 1)),
          String.sub s (sp3 + 1) (sp4 - sp3 - 1),
          sp4 + 1 )
  with _ -> None

let bloks_of_string t s =
  let bs = t.block_size in
  let n = (String.length s + bs - 1) / bs in
  List.init n (fun i ->
      String.sub s (i * bs) (min bs (String.length s - (i * bs))))

(* -- append ----------------------------------------------------------- *)

type append_error = [ `Crashed | `Full | `Io ]

let metric name = if !Obs.enabled then Obs.Metrics.inc ("journal." ^ name)

let store_bloks t ~at bloks =
  List.iteri (fun i b -> Disk_model.store t.dm ~lba:(at + i) b) bloks

let max_retries = 3

let append_locked t ~site record : (unit, append_error) result =
  if t.full then Error `Full
  else begin
    let encoded = encode ~seq:t.seq (body_of_record record) in
    let bloks = bloks_of_string t encoded in
    let nb = List.length bloks in
    if t.head + nb > t.nblocks then begin
      t.full <- true;
      metric "full";
      Error `Full
    end
    else begin
      let lba = t.first + t.head in
      let now = Sim.now (Proc.current_sim ()) in
      match Inject.crash_write ~now ~site ~lba ~nblocks:nb with
      | Some k ->
          (* Torn append: the first [k] bloks reach the platter, the
             rest never do. The head does not advance — a later append
             (or the remount quarantine) overwrites the tear. *)
          store_bloks t ~at:lba (List.filteri (fun i _ -> i < k) bloks);
          metric "torn_appends";
          Error `Crashed
      | None ->
          let rec go attempt =
            match Usd.transact t.u t.client Usd.Write ~lba ~nblocks:nb with
            | Ok () ->
                store_bloks t ~at:lba bloks;
                t.head <- t.head + nb;
                t.seq <- t.seq + 1;
                t.appended <- t.appended + 1;
                metric "appends";
                Ok ()
            | Error (`Media m) ->
                if m.Usd.persistent || attempt >= max_retries then begin
                  Inject.note_killed "journal";
                  metric "io_errors";
                  Error `Io
                end
                else begin
                  Inject.note_retried "journal";
                  Proc.sleep (Time.ms (1 lsl attempt));
                  go (attempt + 1)
                end
            | Error `Cancelled | Error `Retired ->
                metric "io_errors";
                Error `Io
          in
          go 0
    end
  end

let append t ~site record : (unit, append_error) result =
  Sync.Semaphore.acquire t.lock;
  Fun.protect
    ~finally:(fun () -> Sync.Semaphore.release t.lock)
    (fun () -> append_locked t ~site record)

(* -- replay ----------------------------------------------------------- *)

type replay_stats = {
  rp_replayed : int;
  rp_torn : int;
  rp_scanned : int;
}

let replay_locked t =
  let records = ref [] in
  let torn = ref 0 in
  let pos = ref 0 in
  let seq = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos >= t.nblocks then stop := true
    else
      match Disk_model.load t.dm ~lba:(t.first + !pos) with
      | None -> stop := true (* blank blok: clean end of journal *)
      | Some blok0 -> (
          match parse_header blok0 with
          | None ->
              (* Content that is not a record header: a torn append
                 whose header blok belongs to an older overwritten
                 record, or garbage. Quarantine from here. *)
              incr torn;
              stop := true
          | Some (rseq, blen, crc, body_off) ->
              let total = body_off + blen in
              let nb = (total + t.block_size - 1) / t.block_size in
              if rseq <> !seq || !pos + nb > t.nblocks then begin
                incr torn;
                stop := true
              end
              else begin
                (* Assemble the full record from its blok run. *)
                let buf = Buffer.create total in
                Buffer.add_string buf blok0;
                let complete = ref true in
                for i = 1 to nb - 1 do
                  match Disk_model.load t.dm ~lba:(t.first + !pos + i) with
                  | Some b -> Buffer.add_string buf b
                  | None -> complete := false
                done;
                let assembled = Buffer.contents buf in
                let valid =
                  !complete
                  && String.length assembled >= total
                  &&
                  let body = String.sub assembled body_off blen in
                  crc = checksum ~seq:rseq body
                  && record_of_body body <> None
                in
                if not valid then begin
                  incr torn;
                  stop := true
                end
                else begin
                  let body = String.sub assembled body_off blen in
                  (match record_of_body body with
                  | Some r -> records := r :: !records
                  | None -> assert false);
                  incr seq;
                  pos := !pos + nb
                end
              end)
  done;
  (* Quarantine: erase every blok from the stop point on, so the torn
     tail can never be misread by a later replay and fresh appends
     start from a clean region. *)
  for i = !pos to t.nblocks - 1 do
    Disk_model.erase t.dm ~lba:(t.first + i)
  done;
  t.head <- !pos;
  t.seq <- !seq;
  t.full <- false;
  (* One timed read over the scanned prefix: the remount pays for its
     journal scan like any other client. *)
  if !pos > 0 then
    ignore (Usd.transact t.u t.client Usd.Read ~lba:t.first ~nblocks:!pos);
  if !torn > 0 then metric "torn_found";
  ( List.rev !records,
    { rp_replayed = List.length !records; rp_torn = !torn; rp_scanned = !pos }
  )

(* Holding the lock keeps live clients' appends from interleaving with
   the scan and the head/seq rebuild. *)
let replay t =
  Sync.Semaphore.acquire t.lock;
  Fun.protect
    ~finally:(fun () -> Sync.Semaphore.release t.lock)
    (fun () -> replay_locked t)

let pp_record ppf r =
  Format.pp_print_string ppf (body_of_record r)
