(** The Swap File System: the control half of the User-Safe Backing
    Store.

    The SFS owns a region of the disk's block space and handles control
    operations — allocating an {e extent} (a contiguous range of
    blocks) for use as a swap file, and negotiating the QoS parameters
    of the data path with the USD. Data operations then go straight
    from the client to the USD, scheduled under that client's own
    guarantee: paging traffic of one domain cannot consume another's
    disk time.

    {b Crash consistency.} With [journal_blocks > 0] the head of the
    region is reserved for a write-ahead intent {!Journal}: swap
    open/close and spare remaps are journaled before the in-heap
    structures mutate, and every committing data write appends one
    Commit record after the data landed. {!remount} replays the
    journal idempotently, rebuilds the free map and the per-swap
    remap / assignment tables, and quarantines torn records; a swap
    whose owner died can then be reattached by name ({!detach_swap} /
    {!reattach_swap}) with its committed pages intact. Without a
    journal the behaviour is bit-for-bit the seed semantics. *)

open Engine

type t

type swapfile

val create :
  ?journal_blocks:int ->
  ?journal_qos:Qos.t ->
  ?first_block:int ->
  ?nblocks:int ->
  Usd.t ->
  t
(** Manage [nblocks] of disk starting at [first_block] (defaults: the
    whole disk). [journal_blocks] (default 0 = no journal) reserves
    that many bloks at the head of the region for the intent journal
    and admits a dedicated USD client ["sfs.journal"] under
    [journal_qos] (default 20 ms / 100 ms) so journal traffic is
    scheduled like any other client. *)

type open_error = [ `Exists | `Sfs of string ]
(** [`Exists]: a swapfile of that name is already open — opening it
    again would alias live state. [`Sfs msg]: disk space or disk
    bandwidth exhausted, or the open intent could not be journaled. *)

val open_error_message : open_error -> string

val open_swap :
  t -> name:string -> bytes:int -> qos:Qos.t -> ?spare_pages:int -> unit ->
  (swapfile, open_error) result
(** Allocate an extent of at least [bytes] and admit a USD client with
    the given guarantee. Fails when disk space or disk bandwidth is
    exhausted, and with [`Exists] when [name] is already open.
    [spare_pages] (default 0) reserves extra page slots at the extent
    tail for bad-blok remapping: when a write hits a persistent media
    error the page is transparently relocated to a spare and the remap
    consulted by every later access. *)

val close_swap : t -> swapfile -> unit
(** Return the extent to the free pool, retire the USD client and
    forget the name. Journaled as a close intent. *)

val detach_swap : t -> swapfile -> unit
(** Retire the USD client but keep the extent, name and recovered
    metadata registered: the owner died, a restarted incarnation may
    {!reattach_swap}. Data operations on a detached swapfile return
    [`Retired]. *)

type reattach_error = [ `Unknown | `Attached | `Sfs of string ]

val reattach_swap :
  t -> name:string -> qos:Qos.t ->
  (swapfile * (int * int) list, reattach_error) result
(** Re-admit a USD client for a detached swapfile and return it along
    with its committed [(stretch page, slot)] pairs, sorted — the
    pages a restarted domain can fault back in from swap. *)

val find_swap : t -> string -> swapfile option

val free_blocks : t -> int

val journaled : t -> bool
val journal_degraded : t -> bool
(** The journal filled up or failed; operation continues without
    durability (latched until {!remount}). *)

(** {2 Data path} *)

val extent_blocks : swapfile -> int
val extent_start : swapfile -> int
val page_capacity : swapfile -> int
(** Number of whole data pages the extent can hold (spares excluded). *)

val swap_name : swapfile -> string
val attached : swapfile -> bool

val swap_journaled : swapfile -> bool
(** The owning store has an intent journal mounted — committing write
    paths and the out-of-place rewrite rule apply. *)

type io_error = [ `Lost_pages of int list | `Retired | `Crashed ]
(** [`Lost_pages l]: the recovery ladder (bounded retry with backoff,
    then bad-blok remap for persistent write errors) was exhausted and
    the listed page slots' contents are unrecoverable. [`Retired]: the
    swapfile's USD client went away under the operation (or the
    swapfile is detached). [`Crashed]: an {!Inject} crash point fired
    during a durable write — the write is torn on the platter and the
    writer must treat itself as dead; recovery happens at {!remount}.

    {!Inject} accounting: read losses are noted ([note_killed]) here —
    no caller can conjure the data back. A {e write} loss is not: the
    caller still holds the source frame and may re-site the page
    (note_remapped) or give it up (note_killed); answering the final
    error is the caller's duty, exactly once per listed slot. Crashes
    are tallied separately and stay out of the equation. *)

val read_page : swapfile -> page_index:int -> (unit, io_error) result
(** Synchronous page-sized read of the extent's [page_index]-th page
    slot, scheduled under the swapfile's guarantee. Blocks the calling
    process for the transaction's duration (including any retries). *)

val write_page : swapfile -> page_index:int -> (unit, io_error) result

val read_page_async :
  swapfile -> page_index:int -> (Usd.status Sync.Ivar.t, [ `Retired ]) result
(** Raw submission — no retry/remap ladder; prefetchers that can shrug
    off a failed speculative read use these. *)

val write_page_async :
  swapfile -> page_index:int -> (Usd.status Sync.Ivar.t, [ `Retired ]) result

val read_pages :
  swapfile -> page_index:int -> npages:int -> (unit, io_error) result
(** One disk transaction covering [npages] consecutive page slots —
    the stream-paging extension reads ahead with this. On a media
    error the coalesced transfer degrades to page-at-a-time so healthy
    pages still move and only genuinely bad slots are reported lost. *)

val write_pages :
  swapfile -> page_index:int -> npages:int -> (unit, io_error) result
(** One disk transaction writing [npages] consecutive page slots —
    write-behind coalesces batched dirty evictions with this. Degrades
    like {!read_pages}. *)

val write_pages_commit :
  swapfile ->
  page_index:int ->
  npages:int ->
  pages:(int * int) list ->
  retire:(int * int) list ->
  (unit, io_error) result
(** {!write_pages}, then — under a journal — one Commit record marking
    the [(stretch page, slot)] assignments in [pages] durable and
    retiring the superseded [(stretch page, old slot)] pairs in
    [retire]. The record is appended only after the data write
    succeeded, so its presence certifies the data; a torn data write
    leaves no record and claims nothing. Without a journal this is
    exactly {!write_pages}. *)

val slot_committed : swapfile -> int -> bool
(** The slot's contents are covered by a journal Commit record. A
    committed slot must never be overwritten in place (a torn write
    would destroy the only durable copy); re-site the page to a fresh
    slot and retire the old one through {!write_pages_commit}. *)

val committed_pairs : swapfile -> (int * int) list
(** Sorted committed [(stretch page, slot)] assignments. *)

val slot_ok : swapfile -> slot:int -> bool
(** The durable stamp for this slot is present and intact — the
    remount verification primitive. *)

type client_error = Detached of { name : string }
      (** the swapfile has no USD client until reattached *)

val pp_client_error : Format.formatter -> client_error -> unit
(** Renders the legacy message
    (["Sfs.usd_client: NAME is detached"]). *)

val client_error_message : client_error -> string

val usd_client : swapfile -> (Usd.client, client_error) result
(** [Detached] on a detached swapfile (the old API raised
    [Failure]). *)

val retry_count : swapfile -> int
(** Transient-error retries performed so far. *)

val remap_count : swapfile -> int
(** Pages relocated to spare slots so far. *)

val lost_count : swapfile -> int
(** Page slots declared unrecoverable so far. *)

(** {2 Remount / recovery} *)

type remount_stats = {
  rm_replayed : int;  (** valid journal records replayed *)
  rm_torn : int;  (** torn records detected and quarantined *)
  rm_scanned : int;  (** journal bloks scanned *)
  rm_swaps : int;  (** detached swaps rebuilt from the journal *)
  rm_conflicts : int;
      (** replayed swaps whose extent could not be placed in the
          rebuilt free map (overlap — indicates a lost close record) *)
}

val remount : t -> (remount_stats, string) result
(** Replay the journal and rebuild the control state: the free map is
    reconstructed from scratch (journal region first, then every
    surviving extent at its recorded place), swaps whose owners are
    still attached keep their live structures, and detached or unknown
    swaps are adopted from the journal image with their remap /
    assignment / commit tables. Idempotent: remounting twice yields
    identical {!snapshot}s. Must run inside a simulation process (the
    journal scan is a timed read). Fails only when no journal is
    mounted. *)

val snapshot : t -> string
(** Canonical dump of the control state — free blocks, per-swap
    extents, remap tables, assignments and commit marks — for the
    recovery idempotence and determinism tests. *)
