(** The Swap File System: the control half of the User-Safe Backing
    Store.

    The SFS owns a region of the disk's block space and handles control
    operations — allocating an {e extent} (a contiguous range of
    blocks) for use as a swap file, and negotiating the QoS parameters
    of the data path with the USD. Data operations then go straight
    from the client to the USD, scheduled under that client's own
    guarantee: paging traffic of one domain cannot consume another's
    disk time. *)

open Engine

type t

type swapfile

val create : ?first_block:int -> ?nblocks:int -> Usd.t -> t
(** Manage [nblocks] of disk starting at [first_block] (defaults:
    the whole disk). *)

val open_swap :
  t -> name:string -> bytes:int -> qos:Qos.t -> (swapfile, string) result
(** Allocate an extent of at least [bytes] and admit a USD client with
    the given guarantee. Fails when disk space or disk bandwidth is
    exhausted. *)

val close_swap : t -> swapfile -> unit
(** Return the extent to the free pool and retire the USD client. *)

val free_blocks : t -> int

(** {2 Data path} *)

val extent_blocks : swapfile -> int
val extent_start : swapfile -> int
val page_capacity : swapfile -> int
(** Number of whole pages the extent can hold. *)

val read_page : swapfile -> page_index:int -> unit
(** Synchronous page-sized read of the extent's [page_index]-th page
    slot, scheduled under the swapfile's guarantee. Blocks the calling
    process for the transaction's duration. *)

val write_page : swapfile -> page_index:int -> unit

val read_page_async : swapfile -> page_index:int -> unit Sync.Ivar.t
val write_page_async : swapfile -> page_index:int -> unit Sync.Ivar.t

val read_pages : swapfile -> page_index:int -> npages:int -> unit
(** One disk transaction covering [npages] consecutive page slots —
    the stream-paging extension reads ahead with this. *)

val write_pages : swapfile -> page_index:int -> npages:int -> unit
(** One disk transaction writing [npages] consecutive page slots —
    write-behind coalesces batched dirty evictions with this. *)

val usd_client : swapfile -> Usd.client
