(** The Swap File System: the control half of the User-Safe Backing
    Store.

    The SFS owns a region of the disk's block space and handles control
    operations — allocating an {e extent} (a contiguous range of
    blocks) for use as a swap file, and negotiating the QoS parameters
    of the data path with the USD. Data operations then go straight
    from the client to the USD, scheduled under that client's own
    guarantee: paging traffic of one domain cannot consume another's
    disk time. *)

open Engine

type t

type swapfile

val create : ?first_block:int -> ?nblocks:int -> Usd.t -> t
(** Manage [nblocks] of disk starting at [first_block] (defaults:
    the whole disk). *)

val open_swap :
  t -> name:string -> bytes:int -> qos:Qos.t -> ?spare_pages:int -> unit ->
  (swapfile, string) result
(** Allocate an extent of at least [bytes] and admit a USD client with
    the given guarantee. Fails when disk space or disk bandwidth is
    exhausted. [spare_pages] (default 0) reserves extra page slots at
    the extent tail for bad-blok remapping: when a write hits a
    persistent media error the page is transparently relocated to a
    spare and the remap consulted by every later access. *)

val close_swap : t -> swapfile -> unit
(** Return the extent to the free pool and retire the USD client. *)

val free_blocks : t -> int

(** {2 Data path} *)

val extent_blocks : swapfile -> int
val extent_start : swapfile -> int
val page_capacity : swapfile -> int
(** Number of whole data pages the extent can hold (spares excluded). *)

type io_error = [ `Lost_pages of int list | `Retired ]
(** [`Lost_pages l]: the recovery ladder (bounded retry with backoff,
    then bad-blok remap for persistent write errors) was exhausted and
    the listed page slots' contents are unrecoverable. [`Retired]: the
    swapfile's USD client went away under the operation.

    {!Inject} accounting: read losses are noted ([note_killed]) here —
    no caller can conjure the data back. A {e write} loss is not: the
    caller still holds the source frame and may re-site the page
    (note_remapped) or give it up (note_killed); answering the final
    error is the caller's duty, exactly once per listed slot. *)

val read_page : swapfile -> page_index:int -> (unit, io_error) result
(** Synchronous page-sized read of the extent's [page_index]-th page
    slot, scheduled under the swapfile's guarantee. Blocks the calling
    process for the transaction's duration (including any retries). *)

val write_page : swapfile -> page_index:int -> (unit, io_error) result

val read_page_async :
  swapfile -> page_index:int -> (Usd.status Sync.Ivar.t, [ `Retired ]) result
(** Raw submission — no retry/remap ladder; prefetchers that can shrug
    off a failed speculative read use these. *)

val write_page_async :
  swapfile -> page_index:int -> (Usd.status Sync.Ivar.t, [ `Retired ]) result

val read_pages :
  swapfile -> page_index:int -> npages:int -> (unit, io_error) result
(** One disk transaction covering [npages] consecutive page slots —
    the stream-paging extension reads ahead with this. On a media
    error the coalesced transfer degrades to page-at-a-time so healthy
    pages still move and only genuinely bad slots are reported lost. *)

val write_pages :
  swapfile -> page_index:int -> npages:int -> (unit, io_error) result
(** One disk transaction writing [npages] consecutive page slots —
    write-behind coalesces batched dirty evictions with this. Degrades
    like {!read_pages}. *)

val usd_client : swapfile -> Usd.client

val retry_count : swapfile -> int
(** Transient-error retries performed so far. *)

val remap_count : swapfile -> int
(** Pages relocated to spare slots so far. *)

val lost_count : swapfile -> int
(** Page slots declared unrecoverable so far. *)
