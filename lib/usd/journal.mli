(** Write-ahead intent journal for the backing store.

    A reserved region at the head of the {!Sfs} disk partition holds a
    sequence of checksummed, sequence-numbered records describing every
    metadata mutation of the backing store — extent alloc/free, swap
    open/close, spare remaps — plus the data-commit records that make
    page-out writes durable. Metadata records are appended {e before}
    the in-heap structures mutate (write-ahead); a commit record is
    appended {e after} its data write completed, so a record's presence
    certifies the data it covers.

    Records are padded to whole bloks and written through the USD under
    the journal's own small QoS guarantee, so journal traffic is
    scheduled like any other client and cannot starve the pagers.
    Durable bytes live in the {!Disk.Disk_model} per-LBA contents
    store; an {!Inject} crash point fired during an append persists
    only a prefix of the record's bloks, which {!replay} later detects
    by checksum / truncation and quarantines (the journal is erased
    from the torn record on, and appends resume over it).

    Replay is idempotent: it only reads the platter and resets the
    in-memory head/sequence cursors, so replaying twice yields the
    same record list and the same journal state. *)

type record =
  | Ext_alloc of { start : int; len : int; tag : string }
  | Ext_free of { start : int; len : int; tag : string }
  | Swap_open of {
      name : string;
      start : int;
      len : int;
      data_pages : int;
      spare_pages : int;
    }
  | Swap_close of { name : string }
  | Remap of { name : string; slot : int; spare : int }
  | Commit of {
      name : string;
      pairs : (int * int) list;
          (** (stretch page, slot) assignments made durable *)
      retire : (int * int) list;
          (** (stretch page, old slot) superseded by this commit *)
    }

type parse_error =
  | Bad_pair of string
      (** a token of a Commit body is not a ["page:slot"] pair *)
  | Missing_pairs
      (** the body ended short of its declared pair count *)

val pp_parse_error : Format.formatter -> parse_error -> unit
(** Renders the legacy failwith strings (["pair"] / ["pairs"]). *)

val parse_error_message : parse_error -> string

type t

val create : u:Usd.t -> client:Usd.client -> first:int -> nblocks:int -> t
(** A journal over bloks [[first, first + nblocks)], appending through
    [client]. A fresh journal starts empty; call {!replay} to adopt
    whatever survives on the platter. *)

type append_error =
  [ `Crashed  (** a crash point fired mid-append; the record is torn *)
  | `Full  (** region exhausted — journaling degrades, never kills *)
  | `Io  (** unrecoverable media error on the journal region *) ]

val append : t -> site:string -> record -> (unit, append_error) result
(** Serialize, checksum and persist one record, charging the I/O to
    the journal's USD client. [site] names the swap the record is on
    behalf of (crash points are site-scoped so a victim's crash never
    fires on a bystander's append). Must run inside a simulation
    process. On [`Full] the journal latches full and every later
    append returns [`Full] immediately. *)

type replay_stats = {
  rp_replayed : int;  (** valid records recovered *)
  rp_torn : int;  (** torn/corrupt records detected and quarantined *)
  rp_scanned : int;  (** bloks scanned before the journal ended *)
}

val replay : t -> record list * replay_stats
(** Scan the region from the first blok: each record is validated
    (magic, sequence number, checksum, complete blok run) and the scan
    stops at the first blank or torn record. Everything from the stop
    point on is erased (quarantine), the head/sequence cursors are
    reset to the stop point, and the valid records are returned in
    append order. One timed USD read covers the scanned span. Must run
    inside a simulation process. *)

val first_block : t -> int
val nblocks : t -> int
val head : t -> int
(** Next free blok offset within the region. *)

val appended : t -> int
val full : t -> bool

val pp_record : Format.formatter -> record -> unit
