open Disk

type file = {
  fname : string;
  ext : Extents.extent;
  page_blocks : int;
  mutable deleted : bool;
}

type t = {
  u : Usd.t;
  extents : Extents.t;
  files : (string, file) Hashtbl.t;
  page_blocks : int;
}

let page_bytes = 8192

let create ?(first_block = 0) ?nblocks u =
  let params = Disk_model.params (Usd.disk u) in
  let total = params.Disk_params.nblocks in
  let nblocks = match nblocks with Some n -> n | None -> total - first_block in
  if first_block < 0 || nblocks <= 0 || first_block + nblocks > total then
    invalid_arg "File_store.create: region out of bounds";
  { u;
    extents = Extents.create ~first:first_block ~len:nblocks;
    files = Hashtbl.create 16;
    page_blocks = page_bytes / params.Disk_params.block_size }

let free_blocks t = Extents.free_blocks t.extents

let create_file t ~name ~bytes =
  if Hashtbl.mem t.files name then
    Error (Printf.sprintf "file %S already exists" name)
  else begin
    let pages = (bytes + page_bytes - 1) / page_bytes in
    let len = max 1 pages * t.page_blocks in
    match Extents.alloc t.extents ~len with
    | None -> Error (Printf.sprintf "no extent of %d blocks available" len)
    | Some ext ->
      let f = { fname = name; ext; page_blocks = t.page_blocks; deleted = false } in
      Hashtbl.replace t.files name f;
      Ok f
  end

let find t name = Hashtbl.find_opt t.files name

let delete t f =
  if not f.deleted then begin
    f.deleted <- true;
    Hashtbl.remove t.files f.fname;
    Extents.free t.extents f.ext
  end

let file_name f = f.fname
let file_pages f = f.ext.Extents.len / f.page_blocks
let extent_start f = f.ext.Extents.start

let lba_of_page f page_index =
  if f.deleted then invalid_arg "File_store: file deleted";
  if page_index < 0 || page_index >= file_pages f then
    invalid_arg "File_store: page index out of file";
  f.ext.Extents.start + (page_index * f.page_blocks)

let read_page_async t f ~client ~page_index =
  Usd.submit t.u client Usd.Read ~lba:(lba_of_page f page_index)
    ~nblocks:f.page_blocks

(* File-store clients (the Fig. 7/8 streamers) have no recovery story
   of their own: retry transient errors a few times, give up loudly on
   anything worse. *)
let rw t f ~client op ~page_index =
  let rec go ~attempt =
    match
      Usd.transact t.u client op ~lba:(lba_of_page f page_index)
        ~nblocks:f.page_blocks
    with
    | Ok () -> ()
    | Error (`Media m) when (not m.Usd.persistent) && attempt < 3 ->
      Inject.note_retried "file_store";
      go ~attempt:(attempt + 1)
    | Error (`Media m) ->
      Inject.note_killed "file_store";
      failwith
        (Printf.sprintf "File_store: unrecoverable media error at lba %d"
           m.Usd.bad_lba)
    | Error `Cancelled | Error `Retired ->
      failwith "File_store: client retired"
  in
  go ~attempt:0

let read_page t f ~client ~page_index = rw t f ~client Usd.Read ~page_index
let write_page t f ~client ~page_index = rw t f ~client Usd.Write ~page_index
