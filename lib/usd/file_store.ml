open Engine
open Disk

type file = {
  fname : string;
  ext : Extents.extent;
  page_blocks : int;
  mutable deleted : bool;
}

type t = {
  u : Usd.t;
  mutable extents : Extents.t;
  files : (string, file) Hashtbl.t;
  page_blocks : int;
  region_first : int;
  region_len : int;
  journal : Journal.t option;
  mutable jdegraded : bool;
}

let page_bytes = 8192

let default_journal_qos =
  Qos.make ~period:(Time.ms 200) ~slice:(Time.ms 10) ()

let create ?(journal_blocks = 0) ?journal_qos ?(first_block = 0) ?nblocks u =
  let params = Disk_model.params (Usd.disk u) in
  let total = params.Disk_params.nblocks in
  let nblocks = match nblocks with Some n -> n | None -> total - first_block in
  if first_block < 0 || nblocks <= 0 || first_block + nblocks > total then
    invalid_arg "File_store.create: region out of bounds";
  if journal_blocks < 0 || journal_blocks >= nblocks then
    invalid_arg "File_store.create: journal_blocks out of range";
  let extents = Extents.create ~first:first_block ~len:nblocks in
  let journal =
    if journal_blocks = 0 then None
    else begin
      (match Extents.alloc_at extents ~start:first_block ~len:journal_blocks with
      | Some _ -> ()
      | None -> assert false (* fresh region *));
      let qos =
        match journal_qos with Some q -> q | None -> default_journal_qos
      in
      match Usd.admit u ~name:"fs.journal" ~qos () with
      | Error e -> invalid_arg ("File_store.create: journal client: " ^ e)
      | Ok client ->
          Some (Journal.create ~u ~client ~first:first_block
                  ~nblocks:journal_blocks)
    end
  in
  { u; extents;
    files = Hashtbl.create 16;
    page_blocks = page_bytes / params.Disk_params.block_size;
    region_first = first_block; region_len = nblocks;
    journal; jdegraded = false }

let free_blocks t = Extents.free_blocks t.extents
let journaled t = t.journal <> None

(* Same degradation contract as {!Sfs}: only a crash surfaces; a full
   or sick journal latches degraded and the store keeps working
   without durability. *)
let journal_append t ~site record : (unit, [ `Crashed ]) result =
  match t.journal with
  | None -> Ok ()
  | Some j ->
      if t.jdegraded then Ok ()
      else begin
        match Journal.append j ~site record with
        | Ok () -> Ok ()
        | Error `Crashed -> Error `Crashed
        | Error `Full | Error `Io ->
            t.jdegraded <- true;
            if !Obs.enabled then Obs.Metrics.inc "fs.journal_degraded";
            Ok ()
      end

let create_file t ~name ~bytes =
  if Hashtbl.mem t.files name then
    Error (Printf.sprintf "file %S already exists" name)
  else begin
    let pages = (bytes + page_bytes - 1) / page_bytes in
    let len = max 1 pages * t.page_blocks in
    match Extents.alloc t.extents ~len with
    | None -> Error (Printf.sprintf "no extent of %d blocks available" len)
    | Some ext ->
      (* Write-ahead: the allocation intent is durable before the file
         becomes visible. *)
      (match
         journal_append t ~site:name
           (Journal.Ext_alloc
              { start = ext.Extents.start; len = ext.Extents.len; tag = name })
       with
      | Error `Crashed ->
        Extents.free t.extents ext;
        Error "crashed while journaling file allocation"
      | Ok () ->
        let f =
          { fname = name; ext; page_blocks = t.page_blocks; deleted = false }
        in
        Hashtbl.replace t.files name f;
        Ok f)
  end

let find t name = Hashtbl.find_opt t.files name

let delete t f =
  if not f.deleted then begin
    (match
       journal_append t ~site:f.fname
         (Journal.Ext_free
            { start = f.ext.Extents.start; len = f.ext.Extents.len;
              tag = f.fname })
     with
    | Ok () | Error `Crashed -> ());
    f.deleted <- true;
    Hashtbl.remove t.files f.fname;
    Extents.free t.extents f.ext
  end

type remount_stats = {
  rm_replayed : int;
  rm_torn : int;
  rm_files : int;
  rm_conflicts : int;
}

let remount t =
  match t.journal with
  | None -> Error "File_store.remount: no journal mounted"
  | Some j ->
    let records, rp = Journal.replay j in
    let image : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun r ->
        match r with
        | Journal.Ext_alloc { start; len; tag } ->
          Hashtbl.replace image tag (start, len)
        | Journal.Ext_free { tag; _ } -> Hashtbl.remove image tag
        | Journal.Swap_open _ | Journal.Swap_close _ | Journal.Remap _
        | Journal.Commit _ ->
          (* SFS records never land in the file-store journal. *)
          ())
      records;
    let extents = Extents.create ~first:t.region_first ~len:t.region_len in
    ignore
      (Extents.alloc_at extents ~start:(Journal.first_block j)
         ~len:(Journal.nblocks j));
    let conflicts = ref 0 in
    Hashtbl.reset t.files;
    let rebuilt = ref 0 in
    Hashtbl.fold (fun name sl acc -> (name, sl) :: acc) image []
    |> List.sort compare
    |> List.iter (fun (name, (start, len)) ->
           match Extents.alloc_at extents ~start ~len with
           | None -> incr conflicts
           | Some ext ->
             incr rebuilt;
             Hashtbl.replace t.files name
               { fname = name; ext; page_blocks = t.page_blocks;
                 deleted = false });
    t.extents <- extents;
    t.jdegraded <- false;
    Ok
      { rm_replayed = rp.Journal.rp_replayed;
        rm_torn = rp.Journal.rp_torn;
        rm_files = !rebuilt;
        rm_conflicts = !conflicts }

let snapshot t =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "free=%d\n" (free_blocks t));
  Hashtbl.fold (fun name f acc -> (name, f) :: acc) t.files []
  |> List.sort compare
  |> List.iter (fun (name, f) ->
         Buffer.add_string b
           (Printf.sprintf "file %s start=%d len=%d\n" name
              f.ext.Extents.start f.ext.Extents.len));
  Buffer.contents b

let file_name f = f.fname
let file_pages f = f.ext.Extents.len / f.page_blocks
let extent_start f = f.ext.Extents.start

let lba_of_page f page_index =
  if f.deleted then invalid_arg "File_store: file deleted";
  if page_index < 0 || page_index >= file_pages f then
    invalid_arg "File_store: page index out of file";
  f.ext.Extents.start + (page_index * f.page_blocks)

let read_page_async t f ~client ~page_index =
  Usd.submit t.u client Usd.Read ~lba:(lba_of_page f page_index)
    ~nblocks:f.page_blocks

(* File-store clients (the Fig. 7/8 streamers) have no recovery story
   of their own: retry transient errors a few times, give up loudly on
   anything worse. *)
let rw t f ~client op ~page_index =
  let rec go ~attempt =
    match
      Usd.transact t.u client op ~lba:(lba_of_page f page_index)
        ~nblocks:f.page_blocks
    with
    | Ok () -> Ok ()
    | Error (`Media m) when (not m.Usd.persistent) && attempt < 3 ->
      Inject.note_retried "file_store";
      go ~attempt:(attempt + 1)
    | Error (`Media m) ->
      Inject.note_killed "file_store";
      Error (`Media m)
    | Error `Cancelled | Error `Retired -> Error `Retired
  in
  go ~attempt:0

let read_page t f ~client ~page_index = rw t f ~client Usd.Read ~page_index
let write_page t f ~client ~page_index = rw t f ~client Usd.Write ~page_index
