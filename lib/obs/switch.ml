let enabled = ref false
