(** Begin/end span timing over simulated time, with parent links.

    A span covers one stage of a larger operation — e.g. a single page
    fault decomposes into [fault] > [activation] > [mm.dispatch] >
    [usd.read] > [map] — and carries a label naming the domain it was
    executed for. Finished spans land in a bounded drop-oldest
    {!Ring}, so a long run stays O(capacity) in memory. *)

type t
(** A started (possibly finished) span. *)

type record = {
  id : int;
  name : string;
  label : string;
  parent : int option;  (** id of the enclosing span *)
  t0 : Engine.Time.t;
  t1 : Engine.Time.t;
}

val start :
  now:Engine.Time.t -> ?label:string -> ?parent:t -> string -> t
(** Open a span. [label] defaults to [""]. *)

val finish : now:Engine.Time.t -> t -> unit
(** Close the span and commit it to the buffer; idempotent (later
    calls are ignored). *)

val id : t -> int

val finished : unit -> record list
(** Retained finished spans, oldest first. *)

val count : unit -> int
val dropped : unit -> int

val set_capacity : int -> unit
(** Resize the buffer; clears retained spans. *)

val to_csv : unit -> string
(** [id,parent,name,label,start_ns,end_ns,duration_ns] rows, oldest
    first. *)

val reset : unit -> unit
(** Clear retained spans and restart ids from 0. *)
