(** Process-wide registry of named, per-domain metrics.

    A metric is identified by a [name] (dot-separated, e.g.
    ["fault.latency_us"]) and a [label] naming the domain, stream or
    address-space it belongs to ([""] for system-wide metrics). Three
    kinds exist:

    - {b counters}: monotonically increasing integers;
    - {b gauges}: last-written floats;
    - {b histograms}: fixed-bucket latency/size distributions built on
      {!Engine.Stats} for the running moments.

    All mutators auto-register on first use, so instrumentation sites
    need no set-up; they are cheap enough for the fault hot path (one
    hash lookup) but callers should still guard with {!Switch.enabled}
    so the disabled path costs a single flag read. *)

val inc : ?label:string -> string -> unit
(** Increment a counter by one. *)

val add : ?label:string -> string -> int -> unit
(** Increment a counter by [n]. *)

val set_gauge : ?label:string -> string -> float -> unit

val observe : ?label:string -> ?bounds:float array -> string -> float -> unit
(** Add a sample to a histogram. [bounds] (strictly increasing bucket
    upper limits; default {!latency_bounds_us}) is only consulted when
    the histogram is first created. *)

val latency_bounds_us : float array
(** Default histogram buckets: 1us .. 1s, roughly log-spaced. *)

val counter_value : ?label:string -> string -> int
(** 0 when the counter does not exist. *)

val sum_labels : string -> int
(** Sum of a counter over every label it is registered under —
    per-domain attribution rolled up into a total (e.g. all tenants'
    ["share.hit"] counters). 0 when no label has the counter. *)

val gauge_value : ?label:string -> string -> float option

(** An immutable view of a histogram, for reports and tests. *)
type hist_view = {
  hv_count : int;
  hv_mean : float;
  hv_min : float;  (** [nan] when empty *)
  hv_max : float;  (** [nan] when empty *)
  hv_buckets : (float * int) array;
      (** (upper bound, samples <= bound); the final bucket has bound
          [infinity] and holds the overflow. *)
}

val hist_view : ?label:string -> string -> hist_view option

val hist_quantile : hist_view -> float -> float
(** [hist_quantile v q] with [q] in [0,1]: the upper bound of the
    bucket holding the [q]-th sample — an upper estimate of the true
    quantile, [nan] when empty. *)

type value = Counter of int | Gauge of float | Histogram of hist_view

val snapshot : unit -> (string * string * value) list
(** Every registered metric as [(name, label, value)], sorted by name
    then label. *)

val labels_of : string -> string list
(** The labels under which [name] is registered, sorted. *)

val reset : unit -> unit
(** Drop every registered metric. *)

val to_json : unit -> string
(** The whole registry as a JSON array (no trailing newline). *)

val to_csv : unit -> string
(** [name,label,kind,field,value] rows; histograms emit one row per
    bucket plus count/mean/min/max rows. *)
