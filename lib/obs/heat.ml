let table : (string * int, int ref) Hashtbl.t = Hashtbl.create 256

let note ~owner ~slot =
  match Hashtbl.find_opt table (owner, slot) with
  | Some r -> incr r
  | None -> Hashtbl.replace table (owner, slot) (ref 1)

let count ~owner ~slot =
  match Hashtbl.find_opt table (owner, slot) with
  | Some r -> !r
  | None -> 0

let reset () = Hashtbl.reset table
