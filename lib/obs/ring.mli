(** Bounded, drop-oldest trace buffers.

    The unbounded {!Engine.Trace} is fine for a four-minute figure run
    but not for long soak runs: a ['a Ring.t] keeps the most recent
    [capacity] time-stamped records in O(capacity) memory, counting
    (rather than keeping) everything older. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 65536. Raises [Invalid_argument] when
    [capacity <= 0]. *)

val record : 'a t -> Engine.Time.t -> 'a -> unit
(** Append a record, evicting the oldest one when full. *)

val length : 'a t -> int
(** Records currently held (at most [capacity]). *)

val capacity : 'a t -> int

val dropped : 'a t -> int
(** Records evicted to make room since creation / the last [clear]. *)

val total : 'a t -> int
(** All records ever written: [length + dropped]. *)

val to_list : 'a t -> (Engine.Time.t * 'a) list
(** Oldest first. *)

val iter : (Engine.Time.t -> 'a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
