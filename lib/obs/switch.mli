(** The global instrumentation toggle.

    Kept in its own leaf module so that every layer (hw, sched, usbs,
    core) can guard its hot-path hooks with a single flag read and so
    that [Obs] can re-export it without a dependency cycle. *)

val enabled : bool ref
(** [false] by default: all instrumentation hooks must be no-ops (one
    flag read) so that tier-1 timings are unaffected. *)
