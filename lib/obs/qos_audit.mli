(** Online Quality-of-Service firewall auditor.

    The paper's central claim is that one domain's paging cannot
    perturb another's guaranteed CPU, frames or disk bandwidth. This
    module checks that claim while the system runs, instead of waiting
    for someone to re-plot a figure. Schedulers and the frame
    allocator feed it observations; it flags contract breaches as
    structured {!violation} events.

    {b Invariants audited}

    - {e CPU / USD undersupply}: a client that stayed backlogged for
      [patience] consecutive periods yet received less than
      [(1 - tolerance)] of its contracted slice in each. (A single
      short period can legitimately be lost to one non-preemptible
      transaction crossing the boundary — the paper's QoS granularity
      — so one bad period alone is not a breach.)
    - {e Memory overcommit}: the sum of frame guarantees exceeding
      main memory, which would make a guaranteed allocation
      unsatisfiable.
    - {e Revocation overdue}: a victim that failed to return frames by
      the revocation deadline [T].
    - {e Guarantee starved}: a guaranteed-frame allocation that failed
      outright — optimistic holdings starved a guaranteed one.

    Like {!Metrics}, the auditor is process-global state; call
    {!reset} between independent runs. Every recorded violation also
    bumps the ["qos.violations"] counter (label = violation class). *)

open Engine

type violation =
  | Cpu_undersupply of
      { dom : string; entitled : Time.span; got : Time.span; periods : int }
      (** Totals over the [periods] consecutive underserved periods. *)
  | Usd_undersupply of
      { stream : string; entitled : Time.span; got : Time.span; periods : int }
  | Mem_overcommit of { guaranteed : int; capacity : int }
  | Revocation_overdue of { dom : int; deadline : Time.t; finished : Time.t }
  | Guarantee_starved of { dom : int }

val class_of : violation -> string
(** ["cpu.undersupply"] etc.; the label used on the
    ["qos.violations"] counter. *)

val pp_violation : Format.formatter -> violation -> unit

(** {2 Configuration} *)

val set_tolerance : float -> unit
(** Fraction of the slice a backlogged client may miss per period
    before the period counts as underserved (default 0.1). *)

val set_patience : int -> unit
(** Consecutive underserved periods before a violation is recorded
    (default 2, minimum 1). *)

(** {2 Observation feeds (called by instrumentation hooks)} *)

val cpu_boundary :
  now:Time.t -> dom:string -> entitled:Time.span -> got:Time.span ->
  backlogged:bool -> unit
(** One CPU-contract period boundary: the client was entitled to
    [entitled] and consumed [got]; [backlogged] means it had queued
    work for the whole period. *)

val usd_boundary :
  now:Time.t -> stream:string -> entitled:Time.span -> got:Time.span ->
  backlogged:bool -> unit

val mem_grant : now:Time.t -> dom:int -> guarantee:int -> capacity:int -> unit
(** A frames contract was admitted (or re-registered). Flags
    [Mem_overcommit] when the guarantees now sum past [capacity]. *)

val mem_release : dom:int -> unit

val revocation_done :
  now:Time.t -> dom:int -> deadline:Time.t -> ok:bool -> unit
(** A revocation round against [dom] finished at [now]; [ok] is false
    when the victim missed the protocol (timed out or returned too
    few frames). *)

val guarantee_starved : now:Time.t -> dom:int -> unit

(** {2 Queries} *)

val total : unit -> int
val ok : unit -> bool
(** [total () = 0]. *)

val by_class : unit -> (string * int) list
(** Violation counts per class, only non-zero classes, sorted. *)

val events : unit -> (Time.t * violation) list
(** Retained violations, oldest first (bounded ring; see
    {!events_dropped}). *)

val events_dropped : unit -> int

type summary = {
  audited_boundaries : int;  (** period boundaries examined *)
  violations : int;
  classes : (string * int) list;
  recent : (Time.t * violation) list;  (** at most the last 10 *)
}

val summarize : unit -> summary

val reset : unit -> unit
(** Forget violations, streaks and registered contracts; keeps
    tolerance/patience settings. *)
