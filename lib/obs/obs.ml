(** Per-domain observability: metrics, span tracing and the online
    QoS-firewall auditor.

    Everything here is process-global and off by default. Subsystems
    guard their instrumentation sites with [!Obs.enabled] so the
    disabled path costs one flag read; experiments that want
    telemetry do

    {[
      Obs.enabled := true;
      Obs.reset ();      (* fresh counters for this run *)
      ... run ...
      Obs.Metrics.to_json (), Obs.Qos_audit.summarize (), ...
    ]} *)

module Ring = Ring
module Metrics = Metrics
module Span = Span
module Qos_audit = Qos_audit
module Heat = Heat

let enabled = Switch.enabled

let set_enabled v = Switch.enabled := v

(* Clear every collector: the registry, the span buffer, the page-heat
   table and the auditor (contracts, streaks and violations). *)
let reset () =
  Metrics.reset ();
  Span.reset ();
  Heat.reset ();
  Qos_audit.reset ()
