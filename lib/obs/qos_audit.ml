open Engine

type violation =
  | Cpu_undersupply of
      { dom : string; entitled : Time.span; got : Time.span; periods : int }
  | Usd_undersupply of
      { stream : string; entitled : Time.span; got : Time.span; periods : int }
  | Mem_overcommit of { guaranteed : int; capacity : int }
  | Revocation_overdue of { dom : int; deadline : Time.t; finished : Time.t }
  | Guarantee_starved of { dom : int }

let class_of = function
  | Cpu_undersupply _ -> "cpu.undersupply"
  | Usd_undersupply _ -> "usd.undersupply"
  | Mem_overcommit _ -> "mem.overcommit"
  | Revocation_overdue _ -> "revocation.overdue"
  | Guarantee_starved _ -> "guarantee.starved"

let pp_violation ppf = function
  | Cpu_undersupply { dom; entitled; got; periods } ->
    Format.fprintf ppf
      "cpu undersupply: %s backlogged for %d period(s), got %a of %a" dom
      periods Time.pp_span got Time.pp_span entitled
  | Usd_undersupply { stream; entitled; got; periods } ->
    Format.fprintf ppf
      "usd undersupply: %s backlogged for %d period(s), got %a of %a" stream
      periods Time.pp_span got Time.pp_span entitled
  | Mem_overcommit { guaranteed; capacity } ->
    Format.fprintf ppf
      "memory overcommit: %d guaranteed frames exceed %d physical" guaranteed
      capacity
  | Revocation_overdue { dom; deadline; finished } ->
    Format.fprintf ppf
      "revocation overdue: domain %d finished at %a, deadline %a" dom Time.pp
      finished Time.pp deadline
  | Guarantee_starved { dom } ->
    Format.fprintf ppf
      "guarantee starved: domain %d's guaranteed frame allocation failed" dom

(* --- state --------------------------------------------------------- *)

type streak = {
  mutable periods : int;
  mutable entitled_acc : Time.span;
  mutable got_acc : Time.span;
}

let tolerance = ref 0.1
let patience = ref 2

let events_ring : violation Ring.t = Ring.create ~capacity:4096 ()
let class_counts : (string, int ref) Hashtbl.t = Hashtbl.create 8
let streaks : (string, streak) Hashtbl.t = Hashtbl.create 16
let mem_guarantees : (int, int) Hashtbl.t = Hashtbl.create 16
let mem_capacity = ref max_int
let boundaries = ref 0

let set_tolerance f =
  if f < 0.0 || f >= 1.0 then
    invalid_arg "Qos_audit.set_tolerance: not in [0,1)";
  tolerance := f

let set_patience n =
  if n < 1 then invalid_arg "Qos_audit.set_patience: minimum 1";
  patience := n

let record ~now v =
  Ring.record events_ring now v;
  let cls = class_of v in
  (match Hashtbl.find_opt class_counts cls with
  | Some r -> incr r
  | None -> Hashtbl.add class_counts cls (ref 1));
  Metrics.inc ~label:cls "qos.violations"

(* --- undersupply streaks ------------------------------------------- *)

let boundary ~now ~key ~entitled ~got ~backlogged make =
  incr boundaries;
  let s =
    match Hashtbl.find_opt streaks key with
    | Some s -> s
    | None ->
      let s = { periods = 0; entitled_acc = 0; got_acc = 0 } in
      Hashtbl.add streaks key s;
      s
  in
  let shortfall =
    float_of_int (entitled - got) > !tolerance *. float_of_int entitled
  in
  if backlogged && shortfall then begin
    s.periods <- s.periods + 1;
    s.entitled_acc <- s.entitled_acc + entitled;
    s.got_acc <- s.got_acc + got;
    if s.periods >= !patience then begin
      record ~now (make ~entitled:s.entitled_acc ~got:s.got_acc
                     ~periods:s.periods);
      s.periods <- 0;
      s.entitled_acc <- 0;
      s.got_acc <- 0
    end
  end
  else begin
    s.periods <- 0;
    s.entitled_acc <- 0;
    s.got_acc <- 0
  end

let cpu_boundary ~now ~dom ~entitled ~got ~backlogged =
  boundary ~now ~key:("cpu:" ^ dom) ~entitled ~got ~backlogged
    (fun ~entitled ~got ~periods -> Cpu_undersupply { dom; entitled; got; periods })

let usd_boundary ~now ~stream ~entitled ~got ~backlogged =
  boundary ~now ~key:("usd:" ^ stream) ~entitled ~got ~backlogged
    (fun ~entitled ~got ~periods ->
      Usd_undersupply { stream; entitled; got; periods })

(* --- memory contracts ---------------------------------------------- *)

let mem_grant ~now ~dom ~guarantee ~capacity =
  mem_capacity := capacity;
  Hashtbl.replace mem_guarantees dom guarantee;
  let total = Hashtbl.fold (fun _ g acc -> acc + g) mem_guarantees 0 in
  if total > capacity then
    record ~now (Mem_overcommit { guaranteed = total; capacity })

let mem_release ~dom = Hashtbl.remove mem_guarantees dom

(* --- revocation and starvation ------------------------------------- *)

let revocation_done ~now ~dom ~deadline ~ok =
  if (not ok) || now > deadline then
    record ~now (Revocation_overdue { dom; deadline; finished = now })

let guarantee_starved ~now ~dom = record ~now (Guarantee_starved { dom })

(* --- queries -------------------------------------------------------- *)

let total () = Ring.total events_ring

let ok () = total () = 0

let by_class () =
  Hashtbl.fold (fun cls r acc -> (cls, !r) :: acc) class_counts []
  |> List.sort compare

let events () = Ring.to_list events_ring

let events_dropped () = Ring.dropped events_ring

type summary = {
  audited_boundaries : int;
  violations : int;
  classes : (string * int) list;
  recent : (Time.t * violation) list;
}

let summarize () =
  let evs = events () in
  let n = List.length evs in
  let recent = if n > 10 then List.filteri (fun i _ -> i >= n - 10) evs else evs in
  { audited_boundaries = !boundaries; violations = total ();
    classes = by_class (); recent }

let reset () =
  Ring.clear events_ring;
  Hashtbl.reset class_counts;
  Hashtbl.reset streaks;
  Hashtbl.reset mem_guarantees;
  mem_capacity := max_int;
  boundaries := 0
