open Engine

type t = {
  sid_ : int;
  sname : string;
  slabel : string;
  sparent : int option;
  st0 : Time.t;
  mutable closed : bool;
}

type record = {
  id : int;
  name : string;
  label : string;
  parent : int option;
  t0 : Time.t;
  t1 : Time.t;
}

let next_id = ref 0
let buffer : record Ring.t ref = ref (Ring.create ~capacity:65536 ())

let start ~now ?(label = "") ?parent name =
  let id = !next_id in
  incr next_id;
  { sid_ = id; sname = name; slabel = label;
    sparent = Option.map (fun p -> p.sid_) parent; st0 = now; closed = false }

let finish ~now t =
  if not t.closed then begin
    t.closed <- true;
    Ring.record !buffer now
      { id = t.sid_; name = t.sname; label = t.slabel; parent = t.sparent;
        t0 = t.st0; t1 = now }
  end

let id t = t.sid_

let finished () = List.map snd (Ring.to_list !buffer)

let count () = Ring.length !buffer
let dropped () = Ring.dropped !buffer

let set_capacity capacity = buffer := Ring.create ~capacity ()

let to_csv () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "id,parent,name,label,start_ns,end_ns,duration_ns\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%s,%s,%d,%d,%d\n" r.id
           (match r.parent with Some p -> string_of_int p | None -> "")
           r.name r.label (Time.to_ns r.t0) (Time.to_ns r.t1)
           (Time.diff r.t1 r.t0)))
    (finished ());
  Buffer.contents b

let reset () =
  Ring.clear !buffer;
  next_id := 0
