open Engine

type hist = {
  bounds : float array;
  counts : int array; (* length bounds + 1; last = overflow *)
  summary : Stats.t;
}

type metric =
  | MCounter of int ref
  | MGauge of float ref
  | MHist of hist

let registry : (string * string, metric) Hashtbl.t = Hashtbl.create 64

let latency_bounds_us =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.;
     10_000.; 20_000.; 50_000.; 100_000.; 200_000.; 500_000.; 1_000_000. |]

let kind_name = function
  | MCounter _ -> "counter"
  | MGauge _ -> "gauge"
  | MHist _ -> "histogram"

let wrong_kind name label m want =
  invalid_arg
    (Printf.sprintf "Metrics: %S (label %S) is a %s, not a %s" name label
       (kind_name m) want)

let find_or ~name ~label make =
  match Hashtbl.find_opt registry (name, label) with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add registry (name, label) m;
    m

let add ?(label = "") name n =
  match find_or ~name ~label (fun () -> MCounter (ref 0)) with
  | MCounter r -> r := !r + n
  | m -> wrong_kind name label m "counter"

let inc ?label name = add ?label name 1

let set_gauge ?(label = "") name v =
  match find_or ~name ~label (fun () -> MGauge (ref v)) with
  | MGauge r -> r := v
  | m -> wrong_kind name label m "gauge"

let make_hist bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics: empty histogram bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics: histogram bounds must be strictly increasing"
  done;
  { bounds; counts = Array.make (n + 1) 0;
    summary = Stats.create () }

let bucket_of h x =
  (* First bound >= x, by binary search; n = overflow. *)
  let n = Array.length h.bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x <= h.bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe ?(label = "") ?(bounds = latency_bounds_us) name x =
  match find_or ~name ~label (fun () -> MHist (make_hist bounds)) with
  | MHist h ->
    let i = bucket_of h x in
    h.counts.(i) <- h.counts.(i) + 1;
    Stats.add h.summary x
  | m -> wrong_kind name label m "histogram"

let counter_value ?(label = "") name =
  match Hashtbl.find_opt registry (name, label) with
  | Some (MCounter r) -> !r
  | _ -> 0

let gauge_value ?(label = "") name =
  match Hashtbl.find_opt registry (name, label) with
  | Some (MGauge r) -> Some !r
  | _ -> None

type hist_view = {
  hv_count : int;
  hv_mean : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (float * int) array;
}

let view_of h =
  let n = Array.length h.bounds in
  { hv_count = Stats.count h.summary;
    hv_mean = Stats.mean h.summary;
    hv_min = Stats.min_value h.summary;
    hv_max = Stats.max_value h.summary;
    hv_buckets =
      Array.init (n + 1) (fun i ->
          ((if i = n then infinity else h.bounds.(i)), h.counts.(i))) }

let sum_labels name =
  Hashtbl.fold
    (fun (n, _) m acc ->
      match m with MCounter r when n = name -> acc + !r | _ -> acc)
    registry 0

let hist_view ?(label = "") name =
  match Hashtbl.find_opt registry (name, label) with
  | Some (MHist h) -> Some (view_of h)
  | _ -> None

let hist_quantile v q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.hist_quantile: q not in [0,1]";
  if v.hv_count = 0 then nan
  else begin
    let target = q *. float_of_int v.hv_count in
    let seen = ref 0 and result = ref nan in
    Array.iter
      (fun (bound, c) ->
        if Float.is_nan !result then begin
          seen := !seen + c;
          if float_of_int !seen >= target && c > 0 then
            result := if Float.is_finite bound then bound else v.hv_max
        end)
      v.hv_buckets;
    if Float.is_nan !result then result := v.hv_max;
    !result
  end

type value = Counter of int | Gauge of float | Histogram of hist_view

let snapshot () =
  Hashtbl.fold
    (fun (name, label) m acc ->
      let v =
        match m with
        | MCounter r -> Counter !r
        | MGauge r -> Gauge !r
        | MHist h -> Histogram (view_of h)
      in
      (name, label, v) :: acc)
    registry []
  |> List.sort compare

let labels_of name =
  Hashtbl.fold
    (fun (n, label) _ acc -> if n = name then label :: acc else acc)
    registry []
  |> List.sort compare

let reset () = Hashtbl.reset registry

(* --- export ------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  let first = ref true in
  List.iter
    (fun (name, label, v) ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b
        (Printf.sprintf "  {\"name\": \"%s\", \"label\": \"%s\", "
           (json_escape name) (json_escape label));
      (match v with
      | Counter n ->
        Buffer.add_string b
          (Printf.sprintf "\"type\": \"counter\", \"value\": %d}" n)
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "\"type\": \"gauge\", \"value\": %s}" (json_float g))
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf
             "\"type\": \"histogram\", \"count\": %d, \"mean\": %s, \
              \"min\": %s, \"max\": %s, \"buckets\": ["
             h.hv_count (json_float h.hv_mean) (json_float h.hv_min)
             (json_float h.hv_max));
        Array.iteri
          (fun i (bound, c) ->
            if i > 0 then Buffer.add_string b ", ";
            let le =
              if Float.is_finite bound then json_float bound else "\"inf\""
            in
            Buffer.add_string b
              (Printf.sprintf "{\"le\": %s, \"count\": %d}" le c))
          h.hv_buckets;
        Buffer.add_string b "]}"))
    (snapshot ());
  Buffer.add_string b "\n]";
  Buffer.contents b

let to_csv () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "name,label,kind,field,value\n";
  let row name label kind field value =
    Buffer.add_string b
      (Printf.sprintf "%s,%s,%s,%s,%s\n" name label kind field value)
  in
  List.iter
    (fun (name, label, v) ->
      match v with
      | Counter n -> row name label "counter" "value" (string_of_int n)
      | Gauge g -> row name label "gauge" "value" (Printf.sprintf "%g" g)
      | Histogram h ->
        row name label "histogram" "count" (string_of_int h.hv_count);
        row name label "histogram" "mean" (Printf.sprintf "%g" h.hv_mean);
        row name label "histogram" "min" (Printf.sprintf "%g" h.hv_min);
        row name label "histogram" "max" (Printf.sprintf "%g" h.hv_max);
        Array.iter
          (fun (bound, c) ->
            row name label "histogram"
              (Printf.sprintf "le_%g" bound)
              (string_of_int c))
          h.hv_buckets)
    (snapshot ());
  Buffer.contents b
