(** Per-page fault-heat registry.

    A tiny counter table keyed by (owner, slot): each remote-tier
    fault that misses the local cache bumps the page's heat, and the
    fleet's repair loop orders its rebuild queue hottest-first so the
    pages domains are actually faulting on regain full redundancy
    before cold ones. Like the rest of {!Obs} the registry is
    observation only — it never changes what is rebuilt, only the
    order — and it is cleared by {!Obs.reset} so runs stay
    reproducible. *)

val note : owner:string -> slot:int -> unit
(** Bump the page's heat by one. Callers guard with [!Obs.enabled]
    themselves (matching the other observation hooks). *)

val count : owner:string -> slot:int -> int
(** Faults recorded against the page since the last {!reset};
    [0] for never-faulted pages. *)

val reset : unit -> unit
(** Forget all heat (called from {!Obs.reset}). *)
