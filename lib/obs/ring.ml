type 'a t = {
  buf : (Engine.Time.t * 'a) option array;
  cap : int;
  mutable next : int; (* slot the next record goes into *)
  mutable len : int;
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; cap = capacity; next = 0; len = 0;
    dropped = 0 }

let record t time v =
  if t.len = t.cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.next) <- Some (time, v);
  t.next <- (t.next + 1) mod t.cap

let length t = t.len
let capacity t = t.cap
let dropped t = t.dropped
let total t = t.len + t.dropped

let iter f t =
  let first = (t.next - t.len + t.cap * 2) mod t.cap in
  for i = 0 to t.len - 1 do
    match t.buf.((first + i) mod t.cap) with
    | Some (time, v) -> f time v
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun time v -> acc := (time, v) :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.next <- 0;
  t.len <- 0;
  t.dropped <- 0
