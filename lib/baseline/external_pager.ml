open Engine
open Hw
open Core

type job = { fault : Fault.t; driver : Stretch_driver.t }

type t = {
  sys : System.t;
  pager : System.domain;
  queue : job Sync.Mailbox.t;
  swap_qos : Usbs.Qos.t;
  mutable handled : int;
}

let queue_depth t = Sync.Mailbox.length t.queue
let faults_handled t = t.handled
let pager_domain t = t.pager

(* The pager's service loop: strict FCFS over all clients' faults. *)
let pager_loop t () =
  let rec loop () =
    let job = Sync.Mailbox.recv t.queue in
    let dom = t.pager.System.dom in
    Domains.consume_cpu dom (Domains.cost dom).Cost.ults_schedule;
    Domains.consume_cpu dom (Domains.cost dom).Cost.driver_invoke;
    (match job.driver.Stretch_driver.full job.fault with
    | Stretch_driver.Success ->
      ignore (Sync.Ivar.try_fill job.fault.Fault.resolved Fault.Resolved)
    | Stretch_driver.Retry ->
      ignore
        (Sync.Ivar.try_fill job.fault.Fault.resolved
           (Fault.Failed "pager retried"))
    | Stretch_driver.Failure m ->
      ignore (Sync.Ivar.try_fill job.fault.Fault.resolved (Fault.Failed m)));
    t.handled <- t.handled + 1;
    loop ()
  in
  loop ()

let create sys ?(frames = 64) ?qos ?(cpu_slice = Time.ms 2) () =
  let qos =
    match qos with
    | Some q -> q
    | None -> Usbs.Qos.make ~period:(Time.ms 250) ~slice:(Time.ms 125) ()
  in
  match
    System.add_domain sys ~name:"external-pager" ~cpu_period:(Time.ms 10)
      ~cpu_slice ~guarantee:frames ~optimistic:0 ()
  with
  | Error e -> Error (System.error_message e)
  | Ok pager ->
    let t =
      { sys; pager; queue = Sync.Mailbox.create (); swap_qos = qos;
        handled = 0 }
    in
    ignore
      (Domains.spawn_thread pager.System.dom ~name:"pager-loop"
         (pager_loop t));
    Ok t

let attach t client stretch ?(swap_bytes = 16 * 1024 * 1024)
    ?(cache_frames = 2) ?(forgetful = false) () =
  (* The pager needs meta rights on the client's stretch to manage its
     mappings — the microkernel grants its pager exactly that. *)
  Pdom.set
    (Domains.pdom t.pager.System.dom)
    ~sid:stretch.Stretch.sid Rights.rw_meta;
  match
    Usbs.Sfs.open_swap (System.sfs t.sys)
      ~name:
        (Printf.sprintf "pager.%s.swap" (Domains.name client.System.dom))
      ~bytes:swap_bytes ~qos:t.swap_qos ()
  with
  | Error e -> Error (Usbs.Sfs.open_error_message e)
  | Ok swap ->
    (* The backing driver runs entirely on pager resources. *)
    (match
       Sd_paged.create ~forgetful ~initial_frames:cache_frames ~swap
         t.pager.System.env
     with
    | Error _ as e -> e
    | Ok (backing, _info) ->
      backing.Stretch_driver.bind stretch;
      (* The client-side proxy: every fault is shipped to the pager. *)
      let proxy =
        { Stretch_driver.name = "external-pager-proxy";
          bind = (fun _ -> ());
          fast = (fun _ -> Stretch_driver.Retry);
          full =
            (fun fault ->
              (* IDC to the pager, then wait for it to resolve the
                 fault; the client's own resources are NOT used. *)
              client.System.env.Stretch_driver.consume_cpu
                client.System.env.Stretch_driver.cost.Cost.idc_call;
              Sync.Mailbox.send t.queue { fault; driver = backing };
              (* The pager fills the fault's ivar itself. *)
              match Sync.Ivar.read fault.Fault.resolved with
              | Fault.Resolved -> Stretch_driver.Success
              | Fault.Failed _ -> Stretch_driver.Failure "pager failed");
          relinquish = (fun ~want:_ -> 0);
          resident_pages = backing.Stretch_driver.resident_pages;
          free_frames = backing.Stretch_driver.free_frames }
      in
      Mm_entry.bind client.System.mm stretch proxy;
      Ok proxy)
