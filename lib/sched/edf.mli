(** Atropos-style EDF accounting core.

    Shared by the CPU scheduler and the USD disk scheduler. Each client
    holds a QoS contract [(p, s, x)]: it may consume at most [s] of the
    resource in every period [p]; [x] marks eligibility for slack time.
    Deadlines are implicit (the end of the current period); allocation
    is replenished at each period boundary with {b roll-over
    accounting}: a client that ends a period with negative remaining
    time (it was allowed to complete an overrunning transaction) has
    the deficit deducted from its next allocation, so it cannot
    deterministically exceed its guarantee. *)

open Engine

type client = {
  id : int;
  cname : string;
  mutable period : Time.span;
  mutable slice : Time.span;
  mutable extra : bool;  (** x flag: eligible for slack *)
  mutable deadline : Time.t;  (** end of current period *)
  mutable remaining : Time.span;  (** may be negative (roll-over) *)
  mutable used_total : Time.span;  (** lifetime consumption *)
  mutable slack_total : Time.span;  (** lifetime slack consumption *)
}

type t

val create : ?rollover:bool -> unit -> t
(** [rollover] (default true) enables negative-remaining carry; the
    A-rollover ablation disables it. *)

val admit :
  t -> name:string -> period:Time.span -> slice:Time.span -> ?extra:bool ->
  now:Time.t -> unit -> (client, string) result
(** Admission control: refused when total utilisation Σ s/p would
    exceed 1. The first deadline is [now + period]. *)

val remove : t -> client -> unit

val clients : t -> client list
(** Live clients in admission order. *)

val length : t -> int
(** Number of live clients, O(1). *)

val find : t -> int -> client option
(** Look up a live client by id, O(1). *)

val utilisation : t -> float

val set_boundary_hook :
  t ->
  (client -> unused:Time.span -> boundary:Time.t -> grants:int -> unit) ->
  unit
(** Observe period boundaries: the hook fires from {!replenish}
    whenever at least one boundary was crossed, with the first crossed
    deadline and the allocation left unspent at it ([unused], clamped
    at 0 — a roll-over deficit reports as 0). Used by the
    observability layer's QoS auditor; at most one hook per
    scheduler. *)

val replenish : t -> now:Time.t -> client -> int
(** Apply every period boundary at or before [now]; returns the number
    of new allocations granted (0 if the deadline is still ahead). A
    client idle across many periods is fast-forwarded without stacking
    allocations. *)

val replenish_all : t -> now:Time.t -> (client * int) list
(** Replenish every client in admission order; returns those granted
    new allocations. O(n) — prefer {!replenish_due} on hot paths. *)

val replenish_due : t -> now:Time.t -> unit
(** Replenish exactly the clients whose deadline is at or before
    [now], found through the deadline heap in (deadline, id) order:
    O(k log n) for k due clients rather than a scan of all n. *)

val charge : client -> Time.span -> unit

val charge_slack : client -> Time.span -> unit
(** Account resource use that was granted as slack: lifetime totals
    only, the period allocation is not debited. *)

val has_budget : client -> bool
(** remaining > 0. *)

val select : ?only:(client -> bool) -> t -> now:Time.t -> client option
(** Earliest-deadline client with budget satisfying [only]. Callers
    must replenish first ({!replenish_due} or {!replenish_all}).
    Backed by a lazy-deletion heap keyed (deadline, id), so ties on
    the deadline go to the earliest-admitted client — the same winner
    the seed's member-list fold produced. *)

val select_slack : ?only:(client -> bool) -> t -> now:Time.t -> client option
(** Earliest-deadline slack-eligible ([extra]) client satisfying
    [only], regardless of budget — used to hand out idle resource
    time. *)

val next_deadline : t -> Time.t option
(** Earliest pending period boundary over all clients. *)

val pp_client : Format.formatter -> client -> unit
