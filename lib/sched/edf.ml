open Engine

type client = {
  id : int;
  cname : string;
  mutable period : Time.span;
  mutable slice : Time.span;
  mutable extra : bool;
  mutable deadline : Time.t;
  mutable remaining : Time.span;
  mutable used_total : Time.span;
  mutable slack_total : Time.span;
}

(* Members live on an intrusive list in admission order (iteration
   order is observable through traces and the boundary hook, so it
   must stay deterministic and match the seed's append-only list).
   The pick-next paths go through a lazy-deletion binary heap keyed
   by (deadline, id): every deadline change pushes a fresh entry, and
   entries whose key no longer matches the client's live deadline —
   or whose client has been removed — are discarded when they surface
   at the top. The (deadline, id) order reproduces the seed fold's
   tie-break exactly: ids are handed out in admission order and the
   fold kept the first-admitted client on equal deadlines. *)
type t = {
  members : client Ilist.t;
  nodes : (int, client Ilist.node) Hashtbl.t;
  by_id : (int, client) Hashtbl.t;
  deadlines : client Heap.t;
  mutable next_id : int;
  rollover : bool;
  mutable on_boundary :
    (client -> unused:Time.span -> boundary:Time.t -> grants:int -> unit)
    option;
}

let create ?(rollover = true) () =
  {
    members = Ilist.create ();
    nodes = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
    deadlines = Heap.create ();
    next_id = 0;
    rollover;
    on_boundary = None;
  }

let set_boundary_hook t f = t.on_boundary <- Some f
let clients t = Ilist.to_list t.members
let length t = Ilist.length t.members
let find t id = Hashtbl.find_opt t.by_id id

let utilisation t =
  Ilist.fold
    (fun acc c -> acc +. (float_of_int c.slice /. float_of_int c.period))
    0.0 t.members

let push_deadline t c = Heap.push t.deadlines ~key:c.deadline ~sub:c.id c
let live t ~key c = Hashtbl.mem t.by_id c.id && c.deadline = key

let admit t ~name ~period ~slice ?(extra = false) ~now () =
  if period <= 0 || slice <= 0 then Error "period and slice must be positive"
  else if slice > period then Error "slice exceeds period"
  else begin
    let u = utilisation t +. (float_of_int slice /. float_of_int period) in
    if u > 1.0 +. 1e-9 then
      Error (Printf.sprintf "admission refused: utilisation %.3f > 1" u)
    else begin
      let c =
        { id = t.next_id; cname = name; period; slice; extra;
          deadline = Time.add now period; remaining = slice;
          used_total = 0; slack_total = 0 }
      in
      t.next_id <- t.next_id + 1;
      let node = Ilist.make_node c in
      Ilist.push_back t.members node;
      Hashtbl.replace t.nodes c.id node;
      Hashtbl.replace t.by_id c.id c;
      push_deadline t c;
      Ok c
    end
  end

(* Heap entries for a removed client are discarded lazily as they
   surface at the top of the heap. *)
let remove t c =
  match Hashtbl.find_opt t.nodes c.id with
  | None -> ()
  | Some node ->
    Ilist.remove t.members node;
    Hashtbl.remove t.nodes c.id;
    Hashtbl.remove t.by_id c.id

let replenish t ~now c =
  let grants = ref 0 in
  let first_boundary = c.deadline in
  let unused = max 0 c.remaining in
  while c.deadline <= now do
    incr grants;
    let carry = if t.rollover && c.remaining < 0 then c.remaining else 0 in
    c.remaining <- c.slice + carry;
    c.deadline <- Time.add c.deadline c.period
  done;
  (* A client that slept across several periods does not stack
     allocations: each boundary above reset [remaining] to at most one
     slice, and the deadline caught up one period at a time. *)
  if !grants > 0 then begin
    push_deadline t c;
    match t.on_boundary with
    | Some f -> f c ~unused ~boundary:first_boundary ~grants:!grants
    | None -> ()
  end;
  !grants

let replenish_all t ~now =
  List.filter_map
    (fun c ->
      let g = replenish t ~now c in
      if g > 0 then Some (c, g) else None)
    (Ilist.to_list t.members)

let rec replenish_due t ~now =
  match Heap.peek t.deadlines with
  | None -> ()
  | Some (key, _, _) when key > now -> ()
  | Some (key, _, c) ->
    ignore (Heap.pop t.deadlines);
    (* [replenish] pushes the caught-up deadline, which lands past
       [now], so each live client is visited at most once per call. *)
    if live t ~key c then ignore (replenish t ~now c);
    replenish_due t ~now

let charge c span =
  c.remaining <- c.remaining - span;
  c.used_total <- c.used_total + span

let charge_slack c span =
  c.used_total <- c.used_total + span;
  c.slack_total <- c.slack_total + span

let has_budget c = c.remaining > 0

(* Pop entries in (deadline, id) order until one satisfies [pred].
   Stale entries are dropped for good; live entries that fail [pred]
   are stashed and pushed back, as is the winner (a live client keeps
   exactly one current heap entry). *)
let heap_select t ~pred =
  let stash = ref [] in
  let rec go () =
    match Heap.pop t.deadlines with
    | None -> None
    | Some (key, sub, c) ->
      if not (live t ~key c) then go ()
      else if pred c then Some (key, sub, c)
      else begin
        stash := (key, sub, c) :: !stash;
        go ()
      end
  in
  let winner = go () in
  (match winner with
  | Some (key, sub, c) -> Heap.push t.deadlines ~key ~sub c
  | None -> ());
  List.iter (fun (key, sub, c) -> Heap.push t.deadlines ~key ~sub c) !stash;
  match winner with Some (_, _, c) -> Some c | None -> None

let select ?(only = fun _ -> true) t ~now:_ =
  heap_select t ~pred:(fun c -> has_budget c && only c)

let select_slack ?(only = fun _ -> true) t ~now:_ =
  heap_select t ~pred:(fun c -> c.extra && only c)

let rec next_deadline t =
  match Heap.peek t.deadlines with
  | None -> None
  | Some (key, _, c) ->
    if live t ~key c then Some key
    else begin
      ignore (Heap.pop t.deadlines);
      next_deadline t
    end

let pp_client ppf c =
  Format.fprintf ppf "%s(p=%a,s=%a,dl=%a,rem=%a)" c.cname Time.pp_span
    c.period Time.pp_span c.slice Time.pp c.deadline Time.pp_span c.remaining
