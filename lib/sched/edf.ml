open Engine

type client = {
  id : int;
  cname : string;
  mutable period : Time.span;
  mutable slice : Time.span;
  mutable extra : bool;
  mutable deadline : Time.t;
  mutable remaining : Time.span;
  mutable used_total : Time.span;
  mutable slack_total : Time.span;
}

type t = {
  mutable members : client list;
  mutable next_id : int;
  rollover : bool;
  mutable on_boundary :
    (client -> unused:Time.span -> boundary:Time.t -> grants:int -> unit)
    option;
}

let create ?(rollover = true) () =
  { members = []; next_id = 0; rollover; on_boundary = None }

let set_boundary_hook t f = t.on_boundary <- Some f

let clients t = t.members

let utilisation t =
  List.fold_left
    (fun acc c -> acc +. (float_of_int c.slice /. float_of_int c.period))
    0.0 t.members

let admit t ~name ~period ~slice ?(extra = false) ~now () =
  if period <= 0 || slice <= 0 then Error "period and slice must be positive"
  else if slice > period then Error "slice exceeds period"
  else begin
    let u = utilisation t +. (float_of_int slice /. float_of_int period) in
    if u > 1.0 +. 1e-9 then
      Error (Printf.sprintf "admission refused: utilisation %.3f > 1" u)
    else begin
      let c =
        { id = t.next_id; cname = name; period; slice; extra;
          deadline = Time.add now period; remaining = slice;
          used_total = 0; slack_total = 0 }
      in
      t.next_id <- t.next_id + 1;
      t.members <- t.members @ [ c ];
      Ok c
    end
  end

let remove t c = t.members <- List.filter (fun c' -> c'.id <> c.id) t.members

let replenish t ~now c =
  let grants = ref 0 in
  let first_boundary = c.deadline in
  let unused = max 0 c.remaining in
  while c.deadline <= now do
    incr grants;
    let carry = if t.rollover && c.remaining < 0 then c.remaining else 0 in
    c.remaining <- c.slice + carry;
    c.deadline <- Time.add c.deadline c.period
  done;
  (* A client that slept across several periods does not stack
     allocations: each boundary above reset [remaining] to at most one
     slice, and the deadline caught up one period at a time. *)
  if !grants > 0 then begin
    match t.on_boundary with
    | Some f -> f c ~unused ~boundary:first_boundary ~grants:!grants
    | None -> ()
  end;
  !grants

let replenish_all t ~now =
  List.filter_map
    (fun c ->
      let g = replenish t ~now c in
      if g > 0 then Some (c, g) else None)
    t.members

let charge c span =
  c.remaining <- c.remaining - span;
  c.used_total <- c.used_total + span

let charge_slack c span =
  c.used_total <- c.used_total + span;
  c.slack_total <- c.slack_total + span

let has_budget c = c.remaining > 0

let select ?(only = fun _ -> true) t ~now:_ =
  List.fold_left
    (fun best c ->
      if has_budget c && only c then
        match best with
        | Some b when b.deadline <= c.deadline -> best
        | _ -> Some c
      else best)
    None t.members

let select_slack ?(only = fun _ -> true) t ~now:_ =
  List.fold_left
    (fun best c ->
      if c.extra && only c then
        match best with
        | Some b when b.deadline <= c.deadline -> best
        | _ -> Some c
      else best)
    None t.members

let next_deadline t =
  List.fold_left
    (fun best c ->
      match best with
      | Some d when d <= c.deadline -> best
      | _ -> Some c.deadline)
    None t.members

let pp_client ppf c =
  Format.fprintf ppf "%s(p=%a,s=%a,dl=%a,rem=%a)" c.cname Time.pp_span
    c.period Time.pp_span c.slice Time.pp c.deadline Time.pp_span c.remaining
