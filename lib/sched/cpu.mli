(** Uniprocessor CPU scheduler (Atropos).

    Domains are admitted with a `(p, s)` CPU contract and call
    {!consume} to burn simulated CPU time; the scheduler serialises all
    execution on the single CPU and grants time EDF-first to clients
    with budget, handing out slack round-robin by deadline when nobody
    with budget is runnable (so the machine is work-conserving, as a
    real Atropos kernel is — the experiments never saturate the CPU,
    matching the paper, but self-paging's "pay for your own faults" is
    enforced because every fault-handling step runs under the faulting
    domain's own contract). *)

open Engine

type t

type client

val create : Sim.t -> t

val admit :
  t -> name:string -> period:Time.span -> slice:Time.span -> ?extra:bool ->
  unit -> (client, string) result
(** [extra] defaults to [true]: domains may use slack CPU time. *)

val consume : t -> client -> Time.span -> (unit, [ `Removed ]) result
(** Block the calling process until the domain has been scheduled for
    the given cumulative CPU time. [consume t c 0] returns at once.
    [Error `Removed] if the client's contract has been withdrawn. *)

val remove : t -> client -> unit
(** Withdraw the contract; pending requests are abandoned (their
    waiters are never woken — callers are expected to be killed). *)

val used : client -> Time.span
(** Lifetime CPU time consumed by the client. *)

val name : client -> string

val edf_client : client -> Edf.client
(** Accounting view, for tests and reporting. *)
