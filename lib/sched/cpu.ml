open Engine

type request = { mutable left : Time.span; wake : unit -> unit }

type client = {
  edf : Edf.client;
  pending : request Queue.t;
  mutable live : bool;
  (* Instant the pending queue last went non-empty; None while empty.
     The QoS auditor treats a client as backlogged over a period only
     when this predates the period's start. *)
  mutable backlogged_since : Time.t option;
}

type t = {
  sim : Sim.t;
  edf : Edf.t;
  (* Clients indexed by EDF id: the scheduler looks members up on
     every pick-next predicate call, so this must be O(1), not a
     list scan. *)
  members : (int, client) Hashtbl.t;
  kick : Sync.Waitq.t;
  mutable running : bool;
  (* Upper bound on one uninterrupted slack grant, so that budgeted
     clients never wait long behind a slack hog. *)
  slack_quantum : Time.span;
}

let find_member t e = Hashtbl.find_opt t.members e.Edf.id

(* Feed the QoS auditor at every period boundary: contracted slice vs
   what was actually consumed, and whether the client spent the whole
   period with work queued. *)
let audit_boundary t e ~unused ~boundary ~grants:_ =
  if !Obs.enabled then begin
    match find_member t e with
    | None -> ()
    | Some c ->
      let period_start = Time.add boundary (-e.Edf.period) in
      let backlogged =
        match c.backlogged_since with
        | Some since -> since <= period_start
        | None -> false
      in
      Obs.Qos_audit.cpu_boundary ~now:boundary ~dom:e.Edf.cname
        ~entitled:e.Edf.slice ~got:(e.Edf.slice - unused) ~backlogged
  end

let create sim =
  let t =
    { sim; edf = Edf.create (); members = Hashtbl.create 64;
      kick = Sync.Waitq.create (); running = false; slack_quantum = Time.ms 1 }
  in
  Edf.set_boundary_hook t.edf (audit_boundary t);
  t

let name (c : client) = c.edf.Edf.cname
let used (c : client) = c.edf.Edf.used_total
let edf_client (c : client) = c.edf

let has_pending (c : client) = not (Queue.is_empty c.pending)

let rec scheduler_loop t =
  let now = Sim.now t.sim in
  Edf.replenish_due t.edf ~now;
  let runnable e =
    match find_member t e with Some c -> c.live && has_pending c | None -> false
  in
  match Edf.select t.edf ~only:runnable ~now with
  | Some e -> run_chunk t e ~slack:false
  | None ->
    (match Edf.select_slack t.edf ~only:runnable ~now with
    | Some e -> run_chunk t e ~slack:true
    | None ->
      (* Nothing runnable: wait for work, but never past the next
         period boundary of a client that still has queued work (its
         budget may return then). The min over the member table is
         order-independent, so hash iteration order cannot leak into
         scheduling decisions. *)
      let next_dl =
        Hashtbl.fold
          (fun _ c best ->
            if c.live && has_pending c then
              match best with
              | Some d when d <= c.edf.Edf.deadline -> best
              | _ -> Some c.edf.Edf.deadline
            else best)
          t.members None
      in
      (match next_dl with
      | Some d ->
        let span = max 0 (Time.diff d now) in
        ignore (Sync.Waitq.wait_timeout t.kick span)
      | None -> Sync.Waitq.wait t.kick);
      scheduler_loop t)

and run_chunk t e ~slack =
  match find_member t e with
  | None -> scheduler_loop t
  | Some c ->
    let req = Queue.peek c.pending in
    let budget_cap =
      if slack then t.slack_quantum else max 0 e.Edf.remaining
    in
    let chunk = min req.left budget_cap in
    let chunk = max chunk 1 in
    Proc.sleep chunk;
    if slack then Edf.charge_slack e chunk else Edf.charge e chunk;
    req.left <- req.left - chunk;
    if req.left <= 0 then begin
      ignore (Queue.pop c.pending);
      if Queue.is_empty c.pending then c.backlogged_since <- None;
      req.wake ()
    end;
    scheduler_loop t

let ensure_running t =
  if not t.running then begin
    t.running <- true;
    ignore (Proc.spawn ~name:"cpu-sched" t.sim (fun () -> scheduler_loop t))
  end

let admit t ~name ~period ~slice ?(extra = true) () =
  match Edf.admit t.edf ~name ~period ~slice ~extra ~now:(Sim.now t.sim) () with
  | Error _ as e -> e
  | Ok e ->
    let c =
      { edf = e; pending = Queue.create (); live = true;
        backlogged_since = None }
    in
    Hashtbl.replace t.members e.Edf.id c;
    ensure_running t;
    Ok c

let remove t (c : client) =
  c.live <- false;
  Edf.remove t.edf c.edf;
  Hashtbl.remove t.members c.edf.Edf.id;
  Sync.Waitq.broadcast t.kick

let consume t (c : client) span =
  if span < 0 then invalid_arg "Cpu.consume: negative span";
  if span = 0 then Ok ()
  else if not c.live then Error `Removed
  else begin
    Proc.suspend (fun wake ->
        if Queue.is_empty c.pending then
          c.backlogged_since <- Some (Sim.now t.sim);
        Queue.add { left = span; wake = (fun () -> wake ()) } c.pending;
        Sync.Waitq.broadcast t.kick);
    Ok ()
  end
