(** Write-behind of dirty evictions.

    Instead of one synchronous disk write per dirty eviction, the
    driver parks the evicted page — frame and all — in this buffer and
    flushes when the batch fills (or when frames are needed, or at
    revocation). A flush sorts the batch by disk address and issues one
    USD transaction per {e contiguous} run of bloks, so a sweep that
    dirties consecutive pages pays one rotation instead of many.

    Because the frame is pinned until its write completes, the buffer
    preserves read-your-writes: a fault on a parked page is
    {e rescued} — the pending write is cancelled and the very same
    frame remapped, with no disk I/O at all (the page stays dirty, so
    it will be cleaned on its next eviction). The invariant: an entry
    is rescuable for exactly as long as it is parked, and it leaves
    the buffer only at the instant its write is issued ([flush]'s
    commit point) — never earlier. So a page is never read from the
    backing store while this buffer holds a newer, not-yet-issued
    copy; [member] is exact, so the driver can always tell.

    The buffer holds metadata only; the [write] callback (supplied by
    the driver, running under the domain's own disk guarantee) does the
    actual transaction. *)

type entry = { page : int; blok : int; frame : int }

type t

val create : ?max_batch:int -> write:(blok:int -> nbloks:int -> unit) -> unit -> t
(** [max_batch <= 1] disables batching: [enabled t = false] and the
    driver writes through synchronously, as the seed did. *)

val enabled : t -> bool
val max_batch : t -> int

val pending : t -> int
(** Entries (= pinned frames) currently parked. *)

val full : t -> bool
(** [pending t >= max_batch]: the driver should flush. *)

val member : t -> page:int -> bool

val enqueue : t -> page:int -> blok:int -> frame:int -> unit
(** Park a dirty evicted page. Raises [Invalid_argument] if the page
    is already parked (the driver must rescue first) or batching is
    disabled. *)

val rescue : t -> page:int -> entry option
(** Cancel the pending write and surrender the entry (read-your-writes
    fast path); [None] if the page is not parked. *)

val flush :
  ?commit:(page:int -> unit) ->
  ?release:(page:int -> frame:int -> unit) ->
  t -> (int * int) list
(** Drain the buffer, coalescing into one [write] call per contiguous
    blok run (ascending). Runs are issued one at a time; entries of a
    run stay parked — and therefore rescuable — until the instant that
    run's write is issued. Per run: [commit ~page] fires for each
    entry immediately before the write (with no intervening blocking
    point, so the driver can re-point the page at the backing store
    atomically with the submission), then [write], then
    [release ~page ~frame] once the write has completed and the frame
    is no longer pinned. Entries parked while a write was in flight
    are flushed too; entries rescued meanwhile are skipped. Returns
    the [(page, frame)] pairs written by this call. Empty buffer: no
    calls, empty list. *)

val flushes : t -> int
(** Number of [write] calls issued so far (coalesced transactions). *)
