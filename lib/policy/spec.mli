(** Policy selection: which replacement, read-ahead and write-behind a
    paged stretch driver should run.

    A spec is a small immutable value that workloads thread down to
    {e their own} driver — per-domain policy choice is the point of
    self-paging. Specs have a compact textual form for CLI use:

    {v
      fifo | clock | lru | wsclock | wsclock:32
        optionally followed by modifiers, '+'-separated:
      +raN       stream read-ahead, window N     (e.g. fifo+ra8)
      +adN       adaptive read-ahead, window N   (e.g. clock+ad8)
      +wbN       write-behind, batch N frames    (e.g. lru+wb16)
    v}

    Since the extension-registry redesign the textual form resolves
    through {!Registry}: base names through {!replacement_axis},
    modifiers through {!modifier_axis}. The built-ins above are
    ordinary registrations, and a new policy registers itself the same
    way — no edit to this module:

    {[
      Registry.register_exn Policy.Spec.replacement_axis
        (Registry.manifest ~name:"random" ~doc:"uniform random victim" ())
        (fun _atom ->
          Ok (Policy.Spec.Ext { mk_name = "random"; mk_make = my_make }))
    ]}

    [default] — FIFO, no read-ahead, write-through — reproduces the
    seed driver's behaviour exactly. *)

type maker = {
  mk_name : string;
      (** canonical, re-parsable name reported by {!name} — bake any
          parameters in (e.g. ["zipf:90"]) *)
  mk_make : now:(unit -> int) -> Replacement.t;
      (** build a {e fresh} policy instance — one per driver, no
          shared state between instantiations (registry isolation
          rule, asserted by the registry tests) *)
}

type replacement =
  | Fifo
  | Clock
  | Lru
  | Wsclock of { window : int }
  | Ext of maker  (** a registered extension ({!replacement_axis}) *)

type t = {
  replacement : replacement;
  prefetch : Prefetch.mode;
  wb_batch : int;  (** <= 1 = write-through *)
}

type modifier = t -> (t, string) result
(** What a ['+']-modifier does to the spec being built. *)

val default : t

val replacement_axis : replacement Registry.axis
(** Hook point for base policy names ([fifo], [clock], ...). *)

val modifier_axis : modifier Registry.axis
(** Hook point for ['+']-separated modifiers ([ra], [ad], [wb]). *)

val name : t -> string
(** Canonical textual form (parsable by {!of_string}). *)

val resolve : string -> (t, Registry.error) result
(** Parse and resolve through the registry, with typed errors — the
    CLI path ({!Registry.error_message} adds a did-you-mean hint). *)

val of_string : string -> (t, string) result
(** Thin wrapper over {!resolve} that renders errors as strings;
    accepts every pre-registry spec string byte-for-byte (golden
    test in [test/test_registry.ml]). *)

val presets : (string * t) list
(** The line-up [policy-compare] runs by default: fifo, fifo+ra8,
    fifo+wb8, clock, lru, wsclock. *)

val make_replacement : t -> now:(unit -> int) -> Replacement.t
val make_prefetch : t -> Prefetch.t

val with_readahead : t -> int -> t
(** Compatibility shim for the seed driver's [?readahead] argument:
    forces [Stream n] when [n > 0] and the spec has no read-ahead of
    its own. Raises [Invalid_argument] when [n > 0] but the spec
    already configures read-ahead ([+raN]/[+adN]) — the two knobs
    would silently shadow each other otherwise. *)

val pp : Format.formatter -> t -> unit
