(** Policy selection: which replacement, read-ahead and write-behind a
    paged stretch driver should run.

    A spec is a small immutable value that workloads thread down to
    {e their own} driver — per-domain policy choice is the point of
    self-paging. Specs have a compact textual form for CLI use:

    {v
      fifo | clock | lru | wsclock | wsclock:32
        optionally followed by modifiers, '+'-separated:
      +raN       stream read-ahead, window N     (e.g. fifo+ra8)
      +adN       adaptive read-ahead, window N   (e.g. clock+ad8)
      +wbN       write-behind, batch N frames    (e.g. lru+wb16)
    v}

    [default] — FIFO, no read-ahead, write-through — reproduces the
    seed driver's behaviour exactly. *)

type replacement = Fifo | Clock | Lru | Wsclock of { window : int }

type t = {
  replacement : replacement;
  prefetch : Prefetch.mode;
  wb_batch : int;  (** <= 1 = write-through *)
}

val default : t

val name : t -> string
(** Canonical textual form (parsable by {!of_string}). *)

val of_string : string -> (t, string) result

val presets : (string * t) list
(** The line-up [policy-compare] runs by default: fifo, fifo+ra8,
    fifo+wb8, clock, lru, wsclock. *)

val make_replacement : t -> now:(unit -> int) -> Replacement.t
val make_prefetch : t -> Prefetch.t

val with_readahead : t -> int -> t
(** Compatibility shim for the seed driver's [?readahead] argument:
    forces [Stream n] when [n > 0] and the spec has no read-ahead of
    its own. Raises [Invalid_argument] when [n > 0] but the spec
    already configures read-ahead ([+raN]/[+adN]) — the two knobs
    would silently shadow each other otherwise. *)

val pp : Format.formatter -> t -> unit
