type mode = Off | Stream of int | Adaptive of int

let default_window = 8

type t = {
  mutable mode : mode;
  mutable last_fault : int;  (* -1 = none yet *)
  mutable stride : int;      (* detected stride; 0 = none *)
  mutable run : int;         (* consecutive faults matching the stride *)
  mutable expected : int;    (* next demand fault if the pattern holds
                                and the last plan was fully consumed *)
  mutable willneed : int list;  (* advice queue, oldest first *)
}

let create mode =
  { mode; last_fault = -1; stride = 0; run = 0; expected = min_int;
    willneed = [] }

let mode t = t.mode

let advise t = function
  | Advice.Sequential ->
    let w =
      match t.mode with
      | Stream w | Adaptive w -> max w default_window
      | Off -> default_window
    in
    t.mode <- Stream w
  | Advice.Random -> t.mode <- Off
  | Advice.Willneed { page; npages } ->
    t.willneed <- t.willneed @ List.init (max 0 npages) (fun i -> page + i)
  | Advice.Dontneed { page; npages } ->
    t.willneed <-
      List.filter (fun p -> p < page || p >= page + npages) t.willneed

(* Window the detector currently believes in: grows with the run so a
   lone coincidence fetches little and a real scan opens up fast. *)
let adaptive_window t w =
  if t.run < 2 || t.stride = 0 then 0 else min w (2 * (t.run - 1))

let record_fault t page =
  (match t.mode with
  | Adaptive w ->
    let delta = page - t.last_fault in
    if t.last_fault < 0 then begin
      t.stride <- 0;
      t.run <- 1
    end
    else if page = t.expected && t.stride <> 0 then
      (* The gap is exactly what our own read-ahead covered: the
         pattern continues. *)
      t.run <- t.run + 1
    else if delta = t.stride && t.stride <> 0 then t.run <- t.run + 1
    else if delta <> 0 && abs delta <= w then begin
      (* Candidate new stride; takes two matching deltas to act. *)
      t.stride <- delta;
      t.run <- 2
    end
    else begin
      t.stride <- 0;
      t.run <- 1
    end;
    let k = adaptive_window t w in
    t.expected <- (if t.stride = 0 then min_int else page + ((k + 1) * t.stride))
  | Off | Stream _ -> ());
  t.last_fault <- page

let plan t ~page =
  let hinted = t.willneed in
  t.willneed <- [];
  let predicted =
    match t.mode with
    | Off -> []
    | Stream w -> List.init w (fun i -> page + i + 1)
    | Adaptive w ->
      let k = adaptive_window t w in
      List.init k (fun i -> page + ((i + 1) * t.stride))
  in
  hinted @ List.filter (fun p -> not (List.mem p hinted)) predicted
