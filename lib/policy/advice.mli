(** Application advice (madvise-style) to a paging policy.

    The paper's argument for self-paging is that a domain servicing its
    own faults is "free to choose its own paging policy"; advice is the
    channel by which the application half of a domain steers the policy
    half without a kernel in between. Hints are exactly that — a policy
    may ignore them — but the stock engines react as documented in
    {!Prefetch} and the paged stretch driver. *)

type t =
  | Sequential
      (** Accesses will sweep forward: open the read-ahead window wide. *)
  | Random
      (** No useful spatial locality: disable read-ahead (prefetched
          pages would mostly be waste). *)
  | Willneed of { page : int; npages : int }
      (** The range will be needed soon: schedule it for read-ahead at
          the next opportunity. *)
  | Dontneed of { page : int; npages : int }
      (** The range will not be needed again soon: the driver may evict
          it (cleaning dirty pages first) and reuse the frames. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
