(** Page-replacement policies.

    A replacement policy is a pure bookkeeping object: it tracks which
    pages (of one stretch) are resident and, when asked, nominates a
    victim. It never touches hardware itself — the driver supplies a
    {!probe} at victim-selection time through which the policy can read
    and clear the per-page referenced bit (on the Alpha this is the
    FOR/FOW re-arm dance, so clearing costs two validated syscalls;
    the driver charges that to its own domain).

    Victims are always pages the policy was told about via [insert]
    and that the probe confirms resident: a policy can never nominate
    a page of someone else's stretch, a nailed frame, or a page it has
    been told to [remove] — the driver only ever unmaps what [victim]
    returns, and [victim] only ever returns what the driver inserted.

    LRU and WSClock order pages by {e per-domain virtual time}: the
    [now] thunk supplied at creation, which the paged driver advances
    once per fault (and advice call) it handles — a domain paging hard
    ages its pages fast; an idle domain's working set does not decay
    just because others are busy. *)

type probe = {
  resident : int -> bool;
      (** Is the page still resident? Guards against stale entries:
          pages evicted behind the policy's back (revocation, advice)
          are skipped, never nominated. *)
  referenced : int -> bool;
      (** Hardware referenced bit: touched since last cleared. *)
  clear_referenced : int -> unit;
      (** Re-arm reference detection for the page. *)
}

type t = {
  name : string;
  insert : int -> unit;
      (** The page became resident (mapped). *)
  touch : int -> unit;
      (** A software-visible touch (fault resolution, advice) — refresh
          recency for policies that track it. *)
  victim : probe -> int option;
      (** Nominate and forget a victim; [None] when nothing is
          resident. May clear referenced bits through the probe. *)
  remove : int -> unit;
      (** The page was evicted externally (advice, revocation). *)
  residents : unit -> int;
}

val fifo : unit -> t
(** Evict in map order — the seed driver's policy, bit-for-bit: victims
    come out in exactly the order [insert] was called. *)

val clock : unit -> t
(** Second chance: sweep a circular list; a referenced page gets its
    bit cleared and survives one sweep, an unreferenced one is
    evicted. *)

val lru : now:(unit -> int) -> unit -> t
(** Sampled least-recently-used: at each victim selection the policy
    samples every resident page's referenced bit, re-stamping (and
    re-arming) the touched ones with the current virtual time, then
    evicts the oldest stamp. This is the strongest recency policy a
    user-level pager can build from referenced bits alone. *)

val wsclock : ?window:int -> now:(unit -> int) -> unit -> t
(** Working-set clock: like {!clock}, but a page whose last reference
    is within [window] virtual-time units (default 16) is part of the
    working set and survives even with its bit clear; outside the
    window it is evicted. Falls back to the oldest stamp when the
    whole residency is in-window (so victim selection always
    terminates). *)
