type entry = { page : int; blok : int; frame : int }

type t = {
  batch : int;
  write : blok:int -> nbloks:int -> unit;
  mutable parked : entry list;  (* unordered *)
  mutable nflushes : int;
}

let create ?(max_batch = 1) ~write () =
  { batch = max_batch; write; parked = []; nflushes = 0 }

let enabled t = t.batch > 1
let max_batch t = t.batch
let pending t = List.length t.parked
let full t = pending t >= t.batch
let member t ~page = List.exists (fun e -> e.page = page) t.parked

let enqueue t ~page ~blok ~frame =
  if not (enabled t) then invalid_arg "Writeback.enqueue: batching disabled";
  if member t ~page then invalid_arg "Writeback.enqueue: page already parked";
  t.parked <- { page; blok; frame } :: t.parked

let rescue t ~page =
  match List.partition (fun e -> e.page = page) t.parked with
  | [ e ], rest ->
    t.parked <- rest;
    Some e
  | _ -> None

let flush ?(commit = fun ~page:_ -> ())
    ?(release = fun ~page:_ ~frame:_ -> ()) t =
  let released = ref [] in
  let rec loop () =
    match List.sort (fun a b -> compare a.blok b.blok) t.parked with
    | [] -> ()
    | first :: rest ->
      (* Longest contiguous blok run starting at the lowest blok. *)
      let rec take acc prev = function
        | e :: tl when e.blok = prev.blok + 1 -> take (e :: acc) e tl
        | _ -> List.rev acc
      in
      let run = take [ first ] first rest in
      (* Commit point: the run leaves the buffer at the same instant
         its write is issued, so an entry is rescuable for exactly as
         long as it is parked here — there is no window in which a
         page is neither rescuable nor (at least) on its way to disk.
         [write] may block; the re-sort on the next iteration picks up
         entries parked or rescued meanwhile. *)
      let in_run e = List.exists (fun r -> r.page = e.page) run in
      t.parked <- List.filter (fun e -> not (in_run e)) t.parked;
      List.iter (fun e -> commit ~page:e.page) run;
      t.nflushes <- t.nflushes + 1;
      t.write ~blok:first.blok ~nbloks:(List.length run);
      List.iter (fun e -> release ~page:e.page ~frame:e.frame) run;
      released := !released @ run;
      loop ()
  in
  loop ();
  List.map (fun e -> (e.page, e.frame)) !released

let flushes t = t.nflushes
