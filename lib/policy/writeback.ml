type entry = { page : int; blok : int; frame : int }

type t = {
  batch : int;
  write : blok:int -> nbloks:int -> unit;
  mutable parked : entry list;  (* unordered *)
  mutable nflushes : int;
}

let create ?(max_batch = 1) ~write () =
  { batch = max_batch; write; parked = []; nflushes = 0 }

let enabled t = t.batch > 1
let max_batch t = t.batch
let pending t = List.length t.parked
let full t = pending t >= t.batch
let member t ~page = List.exists (fun e -> e.page = page) t.parked

let enqueue t ~page ~blok ~frame =
  if not (enabled t) then invalid_arg "Writeback.enqueue: batching disabled";
  if member t ~page then invalid_arg "Writeback.enqueue: page already parked";
  t.parked <- { page; blok; frame } :: t.parked

let rescue t ~page =
  match List.partition (fun e -> e.page = page) t.parked with
  | [ e ], rest ->
    t.parked <- rest;
    Some e
  | _ -> None

let flush t =
  let entries =
    List.sort (fun a b -> compare a.blok b.blok) t.parked
  in
  t.parked <- [];
  let rec runs acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | e :: rest ->
      (match cur with
      | prev :: _ when e.blok = prev.blok + 1 -> runs acc (e :: cur) rest
      | _ :: _ -> runs (List.rev cur :: acc) [ e ] rest
      | [] -> runs acc [ e ] rest)
  in
  match entries with
  | [] -> []
  | first :: rest ->
    let groups = runs [] [ first ] rest in
    List.iter
      (fun run ->
        match run with
        | [] -> ()
        | { blok; _ } :: _ ->
          t.nflushes <- t.nflushes + 1;
          t.write ~blok ~nbloks:(List.length run))
      groups;
    List.map (fun e -> (e.page, e.frame)) entries

let flushes t = t.nflushes
