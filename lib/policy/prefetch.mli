(** Read-ahead planning.

    Generalises the seed driver's ad-hoc stream paging: given the
    demand-fault stream of one stretch, propose pages to read ahead.
    The engine only {e plans}; the driver decides what is actually
    fetchable (swapped, disk-contiguous, spare frames available) and
    reports nothing back — waste is measured by the driver itself from
    referenced bits at eviction time.

    Three modes:

    - [Off]: never plan anything;
    - [Stream w]: always propose the next [w] consecutive pages — the
      seed's fixed window, kept bit-for-bit for compatibility;
    - [Adaptive w]: detect sequential and strided fault patterns and
      open a window (up to [w]) that grows with the run length, so a
      random workload costs nothing and a scan quickly reaches full
      width. The detector accounts for its own success: when read-ahead
      covers [k] pages, the next demand fault lands [k+1] strides away
      and still extends the run.

    {!Advice.Sequential} forces a wide stream, {!Advice.Random} forces
    [Off] (both until the next advice), and {!Advice.Willneed} queues
    pages that [plan] emits, front of the line, at the next fault. *)

type mode = Off | Stream of int | Adaptive of int

type t

val create : mode -> t
val mode : t -> mode

val advise : t -> Advice.t -> unit

val record_fault : t -> int -> unit
(** Note a demand fault (not satisfied by read-ahead) on [page]. *)

val plan : t -> page:int -> int list
(** Pages worth reading ahead after a demand fault on [page], nearest
    first. May contain out-of-range or non-swapped pages — the driver
    filters. *)

val default_window : int
(** Window used when {!Advice.Sequential} arrives in [Off] mode. *)
