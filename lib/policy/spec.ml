type maker = {
  mk_name : string;
  mk_make : now:(unit -> int) -> Replacement.t;
}

type replacement =
  | Fifo
  | Clock
  | Lru
  | Wsclock of { window : int }
  | Ext of maker

type t = {
  replacement : replacement;
  prefetch : Prefetch.mode;
  wb_batch : int;
}

type modifier = t -> (t, string) result

let default = { replacement = Fifo; prefetch = Prefetch.Off; wb_batch = 1 }

let replacement_name = function
  | Fifo -> "fifo"
  | Clock -> "clock"
  | Lru -> "lru"
  | Wsclock { window } ->
    if window = 16 then "wsclock" else Printf.sprintf "wsclock:%d" window
  | Ext m -> m.mk_name

let name t =
  let base = replacement_name t.replacement in
  let base =
    match t.prefetch with
    | Prefetch.Off -> base
    | Prefetch.Stream w -> Printf.sprintf "%s+ra%d" base w
    | Prefetch.Adaptive w -> Printf.sprintf "%s+ad%d" base w
  in
  if t.wb_batch > 1 then Printf.sprintf "%s+wb%d" base t.wb_batch else base

let pp ppf t = Format.pp_print_string ppf (name t)

(* --- Hook points ---

   Base names resolve through [replacement_axis], '+'-separated
   modifiers through [modifier_axis]. The built-ins below reproduce
   the pre-registry closed grammar byte-for-byte (golden-tested);
   anything else is a registration, not an edit to this file. *)

let replacement_axis : replacement Registry.axis =
  Registry.axis ~name:"replacement"
    ~doc:"page-replacement policies (base name of a Policy.Spec string)"

let modifier_axis : modifier Registry.axis =
  Registry.axis ~name:"policy-modifier"
    ~doc:
      "'+'-separated policy-spec modifiers (read-ahead, write-behind); \
       a trailing integer is the modifier's argument, e.g. ra8"

(* A single optional argument: positional ([wsclock:32]), [k=v], or —
   via the registry's numeric-suffix fallback — glued on ([ra8]). *)
let one_arg atom ~key =
  match atom.Registry.Spec.args with
  | [ a ] -> Ok (Some a)
  | [] ->
    (match Registry.Spec.param atom key with
    | Some _ as v -> Ok v
    | None ->
      if atom.Registry.Spec.params = [] then Ok None
      else Error (Printf.sprintf "unknown parameter in %S" atom.Registry.Spec.raw))
  | _ -> Error (Printf.sprintf "too many arguments in %S" atom.Registry.Spec.raw)

let no_args atom v =
  if atom.Registry.Spec.args = [] && atom.Registry.Spec.params = [] then Ok v
  else Error (Printf.sprintf "%s takes no parameter" atom.Registry.Spec.head)

let () =
  let reg name doc ?params ?default parse =
    Registry.register_exn replacement_axis
      (Registry.manifest ~name ~doc ?params ?default ())
      parse
  in
  reg "fifo" "evict in map order — the seed driver's policy, bit-for-bit"
    (fun a -> no_args a Fifo);
  reg "clock" "second chance: sweep a circular list, referenced pages survive"
    (fun a -> no_args a Clock);
  reg "lru" "sampled least-recently-used over per-domain virtual time"
    (fun a -> no_args a Lru);
  reg "wsclock"
    "working-set clock: in-window pages survive even with a clear bit"
    ~params:
      [ { Registry.p_name = "window";
          p_doc = "working-set window in virtual-time units";
          p_kind = Registry.Int 16 } ]
    ~default:"wsclock:16"
    (fun a ->
      match one_arg a ~key:"window" with
      | Error _ as e -> e
      | Ok None -> Ok (Wsclock { window = 16 })
      | Ok (Some w) ->
        (match int_of_string_opt w with
        | Some w when w > 0 -> Ok (Wsclock { window = w })
        | _ -> Error (Printf.sprintf "bad wsclock window %S" w)))

let () =
  let reg name doc ~key apply =
    Registry.register_exn modifier_axis
      (Registry.manifest ~name ~doc
         ~params:
           [ { Registry.p_name = key;
               p_doc = "positive integer argument (also accepted glued on: "
                       ^ name ^ "8)";
               p_kind = Registry.Int 8 } ]
         ())
      (fun a ->
        match one_arg a ~key with
        | Error _ as e -> e
        | Ok None -> Error (Printf.sprintf "bad modifier %S" a.Registry.Spec.raw)
        | Ok (Some v) ->
          (match int_of_string_opt v with
          | Some v when v > 0 -> Ok (apply v)
          | _ -> Error (Printf.sprintf "bad modifier %S" a.Registry.Spec.raw)))
  in
  reg "ra" "stream read-ahead, window N (e.g. fifo+ra8)" ~key:"window"
    (fun w t -> Ok { t with prefetch = Prefetch.Stream w });
  reg "ad" "adaptive stride read-ahead, window up to N (e.g. clock+ad8)"
    ~key:"window" (fun w t -> Ok { t with prefetch = Prefetch.Adaptive w });
  reg "wb" "write-behind, batch N frames (e.g. lru+wb16)" ~key:"batch"
    (fun b t -> Ok { t with wb_batch = b })

let resolve_parsed (spec : Registry.Spec.t) =
  match Registry.resolve_atom replacement_axis spec.Registry.Spec.base with
  | Error _ as e -> e
  | Ok replacement ->
    List.fold_left
      (fun acc m ->
        Result.bind acc (fun t ->
            match Registry.resolve_atom modifier_axis m with
            | Error _ as e -> e
            | Ok f ->
              (match f t with
              | Ok _ as ok -> ok
              | Error reason ->
                Error
                  (Registry.Malformed_spec
                     { axis = Registry.axis_name modifier_axis;
                       spec = m.Registry.Spec.raw;
                       reason }))))
      (Ok { default with replacement })
      spec.Registry.Spec.mods

let resolve s =
  match Registry.Spec.of_string s with
  | Error reason ->
    Error
      (Registry.Malformed_spec
         { axis = Registry.axis_name replacement_axis; spec = s; reason })
  | Ok spec -> resolve_parsed spec

let of_string s =
  match resolve s with
  | Ok _ as ok -> ok
  | Error (Registry.Malformed_spec { reason = "empty spec"; _ }) ->
    (* The pre-registry parser's wording, kept for callers that match
       on it. *)
    Error "empty policy"
  | Error e -> Error (Registry.error_message e)

let presets =
  List.map
    (fun s ->
      match of_string s with
      | Ok t -> (name t, t)
      | Error e -> invalid_arg ("Spec.presets: " ^ e))
    [ "fifo"; "fifo+ra8"; "fifo+wb8"; "clock"; "lru"; "wsclock" ]

let make_replacement t ~now =
  match t.replacement with
  | Fifo -> Replacement.fifo ()
  | Clock -> Replacement.clock ()
  | Lru -> Replacement.lru ~now ()
  | Wsclock { window } -> Replacement.wsclock ~window ~now ()
  | Ext m -> m.mk_make ~now

let make_prefetch t = Prefetch.create t.prefetch

let with_readahead t n =
  if n <= 0 then t
  else
    match t.prefetch with
    | Prefetch.Off -> { t with prefetch = Prefetch.Stream n }
    | Prefetch.Stream _ | Prefetch.Adaptive _ ->
      invalid_arg
        (Printf.sprintf
           "Spec.with_readahead: policy %S already configures read-ahead; \
            drop the readahead argument or the +ra/+ad modifier"
           (name t))
