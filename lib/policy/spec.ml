type replacement = Fifo | Clock | Lru | Wsclock of { window : int }

type t = {
  replacement : replacement;
  prefetch : Prefetch.mode;
  wb_batch : int;
}

let default = { replacement = Fifo; prefetch = Prefetch.Off; wb_batch = 1 }

let replacement_name = function
  | Fifo -> "fifo"
  | Clock -> "clock"
  | Lru -> "lru"
  | Wsclock { window } ->
    if window = 16 then "wsclock" else Printf.sprintf "wsclock:%d" window

let name t =
  let base = replacement_name t.replacement in
  let base =
    match t.prefetch with
    | Prefetch.Off -> base
    | Prefetch.Stream w -> Printf.sprintf "%s+ra%d" base w
    | Prefetch.Adaptive w -> Printf.sprintf "%s+ad%d" base w
  in
  if t.wb_batch > 1 then Printf.sprintf "%s+wb%d" base t.wb_batch else base

let pp ppf t = Format.pp_print_string ppf (name t)

let parse_replacement s =
  match String.split_on_char ':' s with
  | [ "fifo" ] -> Ok Fifo
  | [ "clock" ] -> Ok Clock
  | [ "lru" ] -> Ok Lru
  | [ "wsclock" ] -> Ok (Wsclock { window = 16 })
  | [ "wsclock"; w ] ->
    (match int_of_string_opt w with
    | Some w when w > 0 -> Ok (Wsclock { window = w })
    | _ -> Error (Printf.sprintf "bad wsclock window %S" w))
  | _ -> Error (Printf.sprintf "unknown replacement %S" s)

let parse_modifier t s =
  let num prefix =
    let n = String.length prefix in
    match int_of_string_opt (String.sub s n (String.length s - n)) with
    | Some v when v > 0 -> Ok v
    | _ -> Error (Printf.sprintf "bad modifier %S" s)
  in
  if String.length s > 2 && String.sub s 0 2 = "ra" then
    Result.map (fun w -> { t with prefetch = Prefetch.Stream w }) (num "ra")
  else if String.length s > 2 && String.sub s 0 2 = "ad" then
    Result.map (fun w -> { t with prefetch = Prefetch.Adaptive w }) (num "ad")
  else if String.length s > 2 && String.sub s 0 2 = "wb" then
    Result.map (fun b -> { t with wb_batch = b }) (num "wb")
  else Error (Printf.sprintf "unknown modifier %S" s)

let of_string s =
  match String.split_on_char '+' (String.trim (String.lowercase_ascii s)) with
  | [] | [ "" ] -> Error "empty policy"
  | base :: mods ->
    (match parse_replacement base with
    | Error _ as e -> e
    | Ok replacement ->
      List.fold_left
        (fun acc m -> Result.bind acc (fun t -> parse_modifier t m))
        (Ok { default with replacement })
        mods)

let presets =
  List.map
    (fun s ->
      match of_string s with
      | Ok t -> (name t, t)
      | Error e -> invalid_arg ("Spec.presets: " ^ e))
    [ "fifo"; "fifo+ra8"; "fifo+wb8"; "clock"; "lru"; "wsclock" ]

let make_replacement t ~now =
  match t.replacement with
  | Fifo -> Replacement.fifo ()
  | Clock -> Replacement.clock ()
  | Lru -> Replacement.lru ~now ()
  | Wsclock { window } -> Replacement.wsclock ~window ~now ()

let make_prefetch t = Prefetch.create t.prefetch

let with_readahead t n =
  if n <= 0 then t
  else
    match t.prefetch with
    | Prefetch.Off -> { t with prefetch = Prefetch.Stream n }
    | Prefetch.Stream _ | Prefetch.Adaptive _ ->
      invalid_arg
        (Printf.sprintf
           "Spec.with_readahead: policy %S already configures read-ahead; \
            drop the readahead argument or the +ra/+ad modifier"
           (name t))
