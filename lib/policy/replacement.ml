type probe = {
  resident : int -> bool;
  referenced : int -> bool;
  clear_referenced : int -> unit;
}

type t = {
  name : string;
  insert : int -> unit;
  touch : int -> unit;
  victim : probe -> int option;
  remove : int -> unit;
  residents : unit -> int;
}

(* Every policy keeps a page -> epoch table; ring/queue entries carry
   the epoch they were created under, so an entry whose epoch no longer
   matches (the page was removed, or evicted and re-inserted) is stale
   and silently dropped during scans. *)

let fifo () =
  let q : (int * int) Queue.t = Queue.create () in
  let epoch : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let tick = ref 0 in
  let insert p =
    incr tick;
    Hashtbl.replace epoch p !tick;
    Queue.add (p, !tick) q
  in
  let rec victim probe =
    match Queue.take_opt q with
    | None -> None
    | Some (p, e) ->
      if Hashtbl.find_opt epoch p = Some e && probe.resident p then begin
        Hashtbl.remove epoch p;
        Some p
      end
      else victim probe
  in
  { name = "fifo";
    insert;
    touch = (fun _ -> ());
    victim;
    remove = (fun p -> Hashtbl.remove epoch p);
    residents = (fun () -> Hashtbl.length epoch) }

let clock () =
  let ring : (int * int) Queue.t = Queue.create () in
  let epoch : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let tick = ref 0 in
  let insert p =
    incr tick;
    Hashtbl.replace epoch p !tick;
    Queue.add (p, !tick) ring
  in
  let victim probe =
    (* Two full sweeps suffice: the first clears every referenced bit,
       the second must find an unreferenced page. The guard only
       protects against a probe whose bits re-set themselves. *)
    let guard = ref ((2 * Queue.length ring) + 2) in
    let found = ref None in
    while !found = None && !guard > 0 do
      decr guard;
      match Queue.take_opt ring with
      | None -> guard := 0
      | Some ((p, e) as entry) ->
        if Hashtbl.find_opt epoch p = Some e && probe.resident p then
          if probe.referenced p && !guard > 0 then begin
            probe.clear_referenced p;
            Queue.add entry ring (* second chance: move behind the hand *)
          end
          else begin
            Hashtbl.remove epoch p;
            found := Some p
          end
        (* stale: drop *)
    done;
    !found
  in
  { name = "clock";
    insert;
    touch = (fun _ -> ());
    victim;
    remove = (fun p -> Hashtbl.remove epoch p);
    residents = (fun () -> Hashtbl.length epoch) }

(* Recency stamps are (virtual time, sequence) pairs compared
   lexicographically, so stamping is a total order even when several
   pages are sampled at the same virtual instant. *)

let lru ~now () =
  let stamp : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let seq = ref 0 in
  let restamp p =
    incr seq;
    Hashtbl.replace stamp p (now (), !seq)
  in
  let sorted_pages () =
    List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) stamp [])
  in
  let victim probe =
    (* Sample referenced bits: touched pages move to "now" and get
       their detection re-armed; then the oldest stamp loses. *)
    List.iter
      (fun p ->
        if not (probe.resident p) then Hashtbl.remove stamp p
        else if probe.referenced p then begin
          probe.clear_referenced p;
          restamp p
        end)
      (sorted_pages ());
    let best =
      Hashtbl.fold
        (fun p s acc ->
          match acc with
          | Some (_, s') when s' <= s -> acc
          | _ -> Some (p, s))
        stamp None
    in
    match best with
    | Some (p, _) ->
      Hashtbl.remove stamp p;
      Some p
    | None -> None
  in
  { name = "lru";
    insert = restamp;
    touch = (fun p -> if Hashtbl.mem stamp p then restamp p);
    victim;
    remove = (fun p -> Hashtbl.remove stamp p);
    residents = (fun () -> Hashtbl.length stamp) }

let wsclock ?(window = 16) ~now () =
  let ring : (int * int) Queue.t = Queue.create () in
  let epoch : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let stamp : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let tick = ref 0 in
  let seq = ref 0 in
  let restamp p =
    incr seq;
    Hashtbl.replace stamp p (now (), !seq)
  in
  let insert p =
    incr tick;
    Hashtbl.replace epoch p !tick;
    restamp p;
    Queue.add (p, !tick) ring
  in
  let take p =
    Hashtbl.remove epoch p;
    Hashtbl.remove stamp p;
    Some p
  in
  let victim probe =
    let live = Hashtbl.length epoch in
    let scanned = ref 0 in
    let found = ref None in
    while !found = None && !scanned < live do
      match Queue.take_opt ring with
      | None -> scanned := live
      | Some ((p, e) as entry) ->
        if Hashtbl.find_opt epoch p = Some e then
          if not (probe.resident p) then ignore (take p)
          else begin
            incr scanned;
            if probe.referenced p then begin
              probe.clear_referenced p;
              restamp p;
              Queue.add entry ring
            end
            else
              let age = now () - fst (Hashtbl.find stamp p) in
              if age > window then found := take p else Queue.add entry ring
          end
        (* stale: drop *)
    done;
    (match !found with
    | Some _ -> ()
    | None ->
      (* Whole residency inside the working-set window: fall back to
         evicting the oldest stamp so selection always terminates. *)
      let best =
        Hashtbl.fold
          (fun p s acc ->
            match acc with
            | Some (_, s') when s' <= s -> acc
            | _ -> Some (p, s))
          stamp None
      in
      (match best with
      | Some (p, _) -> found := take p
      | None -> ()));
    !found
  in
  { name = Printf.sprintf "wsclock(w=%d)" window;
    insert;
    touch = (fun p -> if Hashtbl.mem stamp p then restamp p);
    victim;
    remove = (fun p ->
        Hashtbl.remove epoch p;
        Hashtbl.remove stamp p);
    residents = (fun () -> Hashtbl.length epoch) }
