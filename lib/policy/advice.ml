type t =
  | Sequential
  | Random
  | Willneed of { page : int; npages : int }
  | Dontneed of { page : int; npages : int }

let pp ppf = function
  | Sequential -> Format.pp_print_string ppf "sequential"
  | Random -> Format.pp_print_string ppf "random"
  | Willneed { page; npages } ->
    Format.fprintf ppf "willneed[%d..%d]" page (page + npages - 1)
  | Dontneed { page; npages } ->
    Format.fprintf ppf "dontneed[%d..%d]" page (page + npages - 1)

let to_string t = Format.asprintf "%a" pp t
