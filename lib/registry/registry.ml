module Spec = struct
  type atom = {
    head : string;
    args : string list;
    params : (string * string) list;
    raw : string;
  }

  type t = { base : atom; mods : atom list; raw : string }

  (* Segments after the head are separated by ':' or ',' — ':' reads
     naturally for a single argument (wsclock:32), ',' for parameter
     lists (stall:site=x,rate=0.5). *)
  let split_segments s =
    String.split_on_char ':' s
    |> List.concat_map (String.split_on_char ',')

  let atom_of_raw raw =
    match split_segments raw with
    | [] -> Error "empty atom"
    | head :: segs ->
      let args, params =
        List.fold_left
          (fun (args, params) seg ->
            match String.index_opt seg '=' with
            | None -> (seg :: args, params)
            | Some i ->
              let k = String.sub seg 0 i in
              let v = String.sub seg (i + 1) (String.length seg - i - 1) in
              (args, (k, v) :: params))
          ([], []) segs
      in
      Ok { head; args = List.rev args; params = List.rev params; raw }

  let atom_of_string s =
    atom_of_raw (String.trim (String.lowercase_ascii s))

  let of_string s =
    let s = String.trim (String.lowercase_ascii s) in
    if s = "" then Error "empty spec"
    else
      match String.split_on_char '+' s with
      | [] -> Error "empty spec"
      | base :: mods ->
        Result.bind (atom_of_raw base) (fun base ->
            let rec go acc = function
              | [] -> Ok { base; mods = List.rev acc; raw = s }
              | m :: tl ->
                (match atom_of_raw m with
                | Ok a -> go (a :: acc) tl
                | Error _ as e -> e)
            in
            go [] mods)

  let is_digit c = c >= '0' && c <= '9'

  let split_suffix head =
    let n = String.length head in
    let rec start i = if i > 0 && is_digit head.[i - 1] then start (i - 1) else i in
    let i = start n in
    if i = 0 || i = n then None
    else Some (String.sub head 0 i, String.sub head i (n - i))

  let arg a = match a.args with [] -> None | x :: _ -> Some x

  let param a k =
    List.fold_left (fun acc (k', v) -> if k' = k then Some v else acc) None
      a.params

  let int_param a k ~default =
    match param a k with
    | None -> Ok default
    | Some v -> (
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad integer %s=%S" k v))

  let string_param a k ~default = Option.value (param a k) ~default
end

type error =
  | Unknown_extension of { axis : string; name : string; known : string list }
  | Duplicate_extension of { axis : string; name : string }
  | Malformed_spec of { axis : string; spec : string; reason : string }

(* Damerau–Levenshtein-ish distance, enough for a did-you-mean hint. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do d.(i).(0) <- i done;
  for j = 0 to lb do d.(0).(j) <- j done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min
          (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost);
      if
        i > 1 && j > 1 && a.[i - 1] = b.[j - 2] && a.[i - 2] = b.[j - 1]
      then d.(i).(j) <- min d.(i).(j) (d.(i - 2).(j - 2) + cost)
    done
  done;
  d.(la).(lb)

let suggest ~known name =
  let prefix c = String.length name > 0
    && String.length c >= String.length name
    && String.sub c 0 (String.length name) = name
  in
  known
  |> List.filter_map (fun c ->
         let d = edit_distance name c in
         if d <= 2 || prefix c then Some (d, c) else None)
  |> List.sort compare
  |> List.filteri (fun i _ -> i < 3)
  |> List.map snd

let error_message = function
  | Unknown_extension { axis; name; known } ->
    let hint =
      match suggest ~known name with
      | [] -> ""
      | cs -> Printf.sprintf " (did you mean %s?)" (String.concat " or " cs)
    in
    Printf.sprintf "unknown %s %S%s; known: %s" axis name hint
      (String.concat ", " known)
  | Duplicate_extension { axis; name } ->
    Printf.sprintf "duplicate %s %S: already registered" axis name
  | Malformed_spec { axis; spec; reason } ->
    Printf.sprintf "malformed %s spec %S: %s" axis spec reason

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

type param_kind =
  | Flag
  | Int of int
  | Float of float
  | String of string option
  | Names of string list

type param = { p_name : string; p_doc : string; p_kind : param_kind }

type manifest = {
  m_name : string;
  m_doc : string;
  m_params : param list;
  m_default : string option;
}

let manifest ?(params = []) ?default ~name ~doc () =
  { m_name = String.lowercase_ascii name; m_doc = doc; m_params = params;
    m_default = default }

type 'a entry = { manifest : manifest; parse : Spec.atom -> ('a, string) result }

type 'a axis = {
  ax_name : string;
  ax_doc : string;
  entries : (string, 'a entry) Hashtbl.t;
}

(* One global list of (name, doc, manifests-thunk) so list-extensions
   can walk every hook point without knowing the axes' value types. *)
let all_axes : (string * string * (unit -> manifest list)) list ref = ref []

let names_of entries =
  Hashtbl.fold (fun k _ acc -> k :: acc) entries []
  |> List.sort compare

let manifests_of entries =
  names_of entries
  |> List.map (fun n -> (Hashtbl.find entries n).manifest)

let axis ~name ~doc =
  let t = { ax_name = name; ax_doc = doc; entries = Hashtbl.create 8 } in
  all_axes := !all_axes @ [ (name, doc, fun () -> manifests_of t.entries) ];
  t

let axis_name t = t.ax_name

let register t manifest parse =
  let name = manifest.m_name in
  if Hashtbl.mem t.entries name then
    Error (Duplicate_extension { axis = t.ax_name; name })
  else begin
    Hashtbl.replace t.entries name { manifest; parse };
    Ok ()
  end

let register_exn t manifest parse =
  match register t manifest parse with
  | Ok () -> ()
  | Error e ->
    invalid_arg (Printf.sprintf "Registry.register (%s): %s" t.ax_name
                   (error_message e))

let names t = names_of t.entries
let mem t name = Hashtbl.mem t.entries name

let find_manifest t name =
  Option.map (fun e -> e.manifest) (Hashtbl.find_opt t.entries name)

let manifests t = manifests_of t.entries

let resolve_atom t (atom : Spec.atom) =
  let run (entry : _ entry) (atom : Spec.atom) =
    match entry.parse atom with
    | Ok _ as ok -> ok
    | Error reason ->
      Error
        (Malformed_spec { axis = t.ax_name; spec = atom.Spec.raw; reason })
  in
  match Hashtbl.find_opt t.entries atom.Spec.head with
  | Some entry -> run entry atom
  | None ->
    (* "ra8" resolves as "ra" with "8" as its first bare argument. *)
    (match Spec.split_suffix atom.Spec.head with
    | Some (stem, digits) when Hashtbl.mem t.entries stem ->
      run (Hashtbl.find t.entries stem)
        { atom with Spec.head = stem; args = digits :: atom.Spec.args }
    | _ ->
      Error
        (Unknown_extension
          { axis = t.ax_name; name = atom.Spec.head; known = names t }))

let resolve t s =
  match Spec.atom_of_string s with
  | Error reason ->
    Error (Malformed_spec { axis = t.ax_name; spec = s; reason })
  | Ok atom -> resolve_atom t atom

let axes () = List.map (fun (n, d, _) -> (n, d)) !all_axes

let axis_manifests name =
  List.find_map
    (fun (n, _, ms) -> if n = name then Some (ms ()) else None)
    !all_axes

(* --- JSON rendering (same hand-rolled style as Obs.Metrics) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_param p =
  let kind, default =
    match p.p_kind with
    | Flag -> ("flag", "false")
    | Int d -> ("int", string_of_int d)
    | Float d -> ("float", Printf.sprintf "%.17g" d)
    | String None -> ("string", "null")
    | String (Some d) -> ("string", Printf.sprintf "\"%s\"" (json_escape d))
    | Names ds ->
      ( "names",
        "["
        ^ String.concat ", "
            (List.map (fun d -> Printf.sprintf "\"%s\"" (json_escape d)) ds)
        ^ "]" )
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"doc\": \"%s\", \"kind\": \"%s\", \"default\": %s}"
    (json_escape p.p_name) (json_escape p.p_doc) kind default

let json_of_manifest m =
  Printf.sprintf
    "{\"name\": \"%s\", \"doc\": \"%s\", \"default\": %s, \"params\": [%s]}"
    (json_escape m.m_name) (json_escape m.m_doc)
    (match m.m_default with
    | None -> "null"
    | Some d -> Printf.sprintf "\"%s\"" (json_escape d))
    (String.concat ", " (List.map json_of_param m.m_params))

let to_json () =
  let axis_json (name, doc, ms) =
    Printf.sprintf
      "  {\"axis\": \"%s\", \"doc\": \"%s\", \"extensions\": [\n%s\n  ]}"
      (json_escape name) (json_escape doc)
      (String.concat ",\n"
         (List.map (fun m -> "    " ^ json_of_manifest m) (ms ())))
  in
  "[\n" ^ String.concat ",\n" (List.map axis_json !all_axes) ^ "\n]"
