(** The extension registry: every pluggable axis of the simulator —
    replacement / prefetch / writeback policy, backing-store stack,
    fault-injection site, workload pattern, experiment — resolves
    names through one typed API instead of a per-axis closed variant
    match.

    A {e hook point} is an {!type:axis}: a typed table the owning
    subsystem creates once ([Policy.Spec.replacement_axis],
    [Tier.Backing.axis], [Inject.site_axis],
    [Workload.Paging_app.pattern_axis], [Experiments.Catalog.axis]).
    A module that wants to extend the simulator {!register}s a
    {!manifest} (name, doc line, parameter descriptors, default
    config) together with a parser that turns a {!Spec.atom} into the
    axis's value type. Core code then {!resolve}s spec strings like
    ["fifo+ra8"] or ["stall:site=victim.swap,rate=0.02"] through the
    axis — so adding a policy, a workload or an experiment is a
    registration, not an edit to five match statements.

    {b Data isolation.} Registered values are factories by
    convention: each instantiation (e.g. each
    {!Policy.Spec.make_replacement} call) builds fresh state, so two
    drivers resolving the same extension never share mutable state —
    asserted by the registry tests.

    {b Determinism.} The registry is resolved at configuration time
    only; it holds no per-run state and nothing on a paging hot path
    consults it, so registration order cannot perturb a seeded run. *)

(** {1 Spec strings}

    One grammar shared by policy specs, chaos-plan sites, workload
    patterns and experiment parameters:

    {v
      spec    :=  atom ('+' atom)*            fifo+ra8
      atom    :=  head ((':' | ',') seg)*     wsclock:32   stall:site=x,rate=0.5
      seg     :=  key '=' value | value
    v}

    A head with a trailing integer (["ra8"]) also resolves as the
    alphabetic stem with the digits as its first bare argument —
    that is how the legacy ["+ra8"]/["+wb8"] modifiers parse without
    special cases. *)
module Spec : sig
  type atom = {
    head : string;  (** lowercased extension name as written *)
    args : string list;  (** bare (non [k=v]) segments, in order *)
    params : (string * string) list;  (** [k=v] segments, in order *)
    raw : string;  (** the whole atom as written (lowercased) *)
  }

  type t = { base : atom; mods : atom list; raw : string }

  val atom_of_string : string -> (atom, string) result
  (** Parse a single atom; trims and lowercases. An empty head is
      allowed (resolution will report it unknown). *)

  val of_string : string -> (t, string) result
  (** Parse a full ['+']-separated spec. [Error] only on the empty
      string — anything else is deferred to resolution. *)

  val split_suffix : string -> (string * string) option
  (** [split_suffix "ra8"] is [Some ("ra", "8")]: the alphabetic stem
      and the trailing decimal digits; [None] when the head has no
      such split. *)

  val arg : atom -> string option
  (** First bare argument, if any ([Some "32"] for ["wsclock:32"]). *)

  val param : atom -> string -> string option
  (** Last [k=v] value for the key, if any. *)

  val int_param : atom -> string -> default:int -> (int, string) result
  (** [k=v] integer parameter with a default; [Error] on a
      non-integer value. *)

  val string_param : atom -> string -> default:string -> string
end

(** {1 Typed errors} *)

type error =
  | Unknown_extension of { axis : string; name : string; known : string list }
  | Duplicate_extension of { axis : string; name : string }
  | Malformed_spec of { axis : string; spec : string; reason : string }

val error_message : error -> string
(** Human rendering, with a did-you-mean hint and the [known] list on
    unknown names — what the CLI prints. *)

val suggest : known:string list -> string -> string list
(** Close matches (edit distance <= 2, or prefix), best first — the
    did-you-mean candidates. *)

val pp_error : Format.formatter -> error -> unit

(** {1 Manifests} *)

type param_kind =
  | Flag  (** boolean, off by default *)
  | Int of int  (** integer with default *)
  | Float of float
  | String of string option
  | Names of string list
      (** free-form name list (CLI: positional args); default list *)

type param = { p_name : string; p_doc : string; p_kind : param_kind }

type manifest = {
  m_name : string;  (** the key resolution looks up — lowercase *)
  m_doc : string;  (** one-line description *)
  m_params : param list;  (** accepted parameters, for help output *)
  m_default : string option;  (** canonical default spec, if any *)
}

val manifest :
  ?params:param list -> ?default:string -> name:string -> doc:string ->
  unit -> manifest

(** {1 Axes (hook points)} *)

type 'a axis
(** A typed hook point whose registered extensions parse into ['a]. *)

val axis : name:string -> doc:string -> 'a axis
(** Create (and globally list, for {!axes}/{!to_json}) a hook point.
    Owning subsystems create their axis once at module
    initialisation. *)

val axis_name : _ axis -> string

val register :
  'a axis -> manifest -> (Spec.atom -> ('a, string) result) ->
  (unit, error) result
(** Add an extension. The parser receives the resolved atom (with a
    numeric-suffix head already split into [stem]/[args]) and builds
    the axis value; its [Error reason] surfaces as
    [`Malformed_spec]. *)

val register_exn :
  'a axis -> manifest -> (Spec.atom -> ('a, string) result) -> unit
(** Like {!register}; raises [Invalid_argument] on a duplicate name —
    for built-in registrations at module initialisation, where a
    duplicate is a programming error. *)

val resolve_atom : 'a axis -> Spec.atom -> ('a, error) result
(** Look the atom's head up (falling back to the numeric-suffix
    split) and run the extension's parser. *)

val resolve : 'a axis -> string -> ('a, error) result
(** [resolve axis "wsclock:32"] — parse a single atom and resolve. *)

val mem : 'a axis -> string -> bool
val find_manifest : 'a axis -> string -> manifest option
val names : 'a axis -> string list  (** sorted *)

val manifests : 'a axis -> manifest list  (** sorted by name *)

(** {1 Introspection (the [list-extensions] subcommand)} *)

val axes : unit -> (string * string) list
(** [(name, doc)] of every axis created so far, in creation order. *)

val axis_manifests : string -> manifest list option
(** Manifests of the named axis, if it exists. *)

val to_json : unit -> string
(** The whole registry — every axis with every manifest — as JSON. *)
