(** A deterministic systematic Reed–Solomon coder over GF(256).

    The redundancy engine behind {!Fleet}'s [Erasure] mode: a page is
    split into [k] equal data shards and extended with [m] parity
    shards, and {e any} [k] of the [k + m] shards reconstruct the page
    byte-for-byte. Storage cost is [(k + m) / k] of the page — e.g.
    1.5x for (4, 2) against 2.0x for two full replicas — while
    tolerating the loss of any [m] shards.

    Everything here is a pure function of its arguments: the code is
    built from a Vandermonde matrix brought to systematic form (the
    first [k] shards {e are} the page, split in order), so the same
    [(k, m)] always yields the same parity bytes and two same-seed
    simulation runs encode identically. No randomness, no state, no
    I/O — the module is qcheck-able in isolation.

    Losing more than [m] shards is detected, never silently papered
    over: {!decode} with fewer than [k] distinct valid shards returns
    the typed [`Unrecoverable] with the have/need counts. *)

type code
(** A (k, m) code: the systematic generator rows, built once. *)

val make : k:int -> m:int -> code
(** [make ~k ~m] builds the code. Raises [Invalid_argument] unless
    [1 <= k], [0 <= m] and [k + m <= 255] (the GF(256) limit on
    distinct evaluation points). *)

val k : code -> int
(** Data shards per page. *)

val m : code -> int
(** Parity shards per page. *)

val width : code -> int
(** [k + m] — shards placed per page, on distinct nodes. *)

val shard_length : code -> page_bytes:int -> int
(** Bytes per shard for a page of [page_bytes]: [ceil (page_bytes / k)]
    (the final data shard is zero-padded). *)

val encode : code -> bytes -> bytes array
(** [encode c page] is the [k + m] shards of [page]: shards
    [0 .. k-1] are the page split in order (systematic — a healthy
    read needs no decode), shards [k .. k+m-1] the parity. *)

type shortfall = { have : int; need : int }
(** How short a failed decode fell: [have] usable shards of the
    [need = k] required. *)

val decode :
  code ->
  page_bytes:int ->
  (int * bytes) list ->
  (bytes, [ `Unrecoverable of shortfall ]) result
(** [decode c ~page_bytes shards] reconstructs the page from
    [(shard_index, shard)] pairs. Duplicate indices, out-of-range
    indices and wrong-length shards are ignored; if fewer than [k]
    usable shards remain the result is [`Unrecoverable] with the
    usable count — more than [m] losses are detected, never silent
    corruption. Deterministic: the [k] lowest usable indices are the
    ones consulted. *)
