open Engine

type t = {
  capacity_pages : int;
  service : Time.span;
  table : (string * int * int, unit) Hashtbl.t;
}

let create ?(service = Time.us 25) ~capacity_pages () =
  if capacity_pages < 0 then
    invalid_arg "Remote_node.create: negative capacity";
  if service < 0 then invalid_arg "Remote_node.create: negative service time";
  { capacity_pages; service; table = Hashtbl.create 64 }

let used_pages t = Hashtbl.length t.table
let capacity t = t.capacity_pages
let has_room t = used_pages t < t.capacity_pages
let service_time t = t.service

let holds ?(shard = 0) t ~owner ~slot =
  Hashtbl.mem t.table (owner, slot, shard)

let store ?(shard = 0) t ~owner ~slot =
  if holds ~shard t ~owner ~slot then Ok ()
  else if has_room t then begin
    Hashtbl.replace t.table (owner, slot, shard) ();
    Ok ()
  end
  else Error `Remote_full

let drop ?(shard = 0) t ~owner ~slot =
  Hashtbl.remove t.table (owner, slot, shard)

let wipe t = Hashtbl.reset t.table
