(* Re-export of the extension registry under a name that cannot be
   shadowed: [Share] has a frame-sharing [Registry] module of its own
   that masks the library of the same name inside lib/share, so
   Sd_zram's backing registration reaches the extension registry as
   [Tier.Reg]. *)
include Registry
