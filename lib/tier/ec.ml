(* Systematic Reed-Solomon over GF(256), generator polynomial 0x11d.

   The generator matrix is a (k+m) x k Vandermonde matrix V with
   distinct evaluation points 0..k+m-1, right-multiplied by the
   inverse of its own top k x k block. The product's top block is the
   identity (systematic: data shards are the page itself) and any k
   rows remain invertible, because any k rows of V form a Vandermonde
   minor over distinct points. Everything below is a pure function of
   (k, m) and the page bytes. *)

(* --- GF(256) arithmetic (log/antilog tables, built once) ----------- *)

let gf_exp = Array.make 512 0
let gf_log = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    gf_exp.(i) <- !x;
    gf_log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor 0x11d
  done;
  (* doubled so [mul] needs no modular reduction *)
  for i = 255 to 511 do
    gf_exp.(i) <- gf_exp.(i - 255)
  done

let gmul a b = if a = 0 || b = 0 then 0 else gf_exp.(gf_log.(a) + gf_log.(b))

let gdiv a b =
  if b = 0 then invalid_arg "Ec: division by zero"
  else if a = 0 then 0
  else gf_exp.(gf_log.(a) - gf_log.(b) + 255)

(* x^n with x^0 = 1 (including 0^0, the Vandermonde corner). *)
let gpow x n =
  if n = 0 then 1
  else if x = 0 then 0
  else gf_exp.(gf_log.(x) * n mod 255)

(* --- Matrix helpers ------------------------------------------------ *)

(* Gauss-Jordan inversion of a square matrix over GF(256); the
   matrices inverted here (Vandermonde minors over distinct points)
   are always invertible, so a zero pivot is a programming error. *)
let invert mat =
  let n = Array.length mat in
  let a = Array.map Array.copy mat in
  let inv = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
  for col = 0 to n - 1 do
    (* find a non-zero pivot at or below the diagonal *)
    let piv = ref col in
    while a.(!piv).(col) = 0 do
      incr piv;
      if !piv >= n then invalid_arg "Ec: singular matrix"
    done;
    if !piv <> col then begin
      let t = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- t;
      let t = inv.(col) in
      inv.(col) <- inv.(!piv);
      inv.(!piv) <- t
    end;
    let p = a.(col).(col) in
    for j = 0 to n - 1 do
      a.(col).(j) <- gdiv a.(col).(j) p;
      inv.(col).(j) <- gdiv inv.(col).(j) p
    done;
    for row = 0 to n - 1 do
      if row <> col && a.(row).(col) <> 0 then begin
        let f = a.(row).(col) in
        for j = 0 to n - 1 do
          a.(row).(j) <- a.(row).(j) lxor gmul f a.(col).(j);
          inv.(row).(j) <- inv.(row).(j) lxor gmul f inv.(col).(j)
        done
      end
    done
  done;
  inv

let mat_mul a b =
  let n = Array.length a and p = Array.length b.(0) in
  let q = Array.length b in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let acc = ref 0 in
          for t = 0 to q - 1 do
            acc := !acc lxor gmul a.(i).(t) b.(t).(j)
          done;
          !acc))

(* --- The code ------------------------------------------------------ *)

type code = {
  ck : int;
  cm : int;
  rows : int array array;  (* (k+m) x k systematic generator *)
}

let make ~k ~m =
  if k < 1 then invalid_arg "Ec.make: k must be >= 1";
  if m < 0 then invalid_arg "Ec.make: m must be >= 0";
  if k + m > 255 then invalid_arg "Ec.make: k + m must be <= 255";
  let vand =
    Array.init (k + m) (fun i -> Array.init k (fun j -> gpow i j))
  in
  let top = Array.init k (fun i -> vand.(i)) in
  let rows = mat_mul vand (invert top) in
  (* the top block must have come out as the identity *)
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      assert (rows.(i).(j) = if i = j then 1 else 0)
    done
  done;
  { ck = k; cm = m; rows }

let k c = c.ck
let m c = c.cm
let width c = c.ck + c.cm
let shard_length c ~page_bytes = (page_bytes + c.ck - 1) / c.ck

(* --- Encode -------------------------------------------------------- *)

let data_shards c page =
  let len = shard_length c ~page_bytes:(Bytes.length page) in
  Array.init c.ck (fun i ->
      let s = Bytes.make len '\000' in
      let off = i * len in
      let n = min len (Bytes.length page - off) in
      if n > 0 then Bytes.blit page off s 0 n;
      s)

let combine c row shards len =
  let out = Bytes.make len '\000' in
  for j = 0 to c.ck - 1 do
    let coef = row.(j) in
    if coef <> 0 then
      let s = shards.(j) in
      for b = 0 to len - 1 do
        Bytes.unsafe_set out b
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get out b)
             lxor gmul coef (Char.code (Bytes.unsafe_get s b))))
      done
  done;
  out

let encode c page =
  let data = data_shards c page in
  let len = shard_length c ~page_bytes:(Bytes.length page) in
  Array.init (width c) (fun i ->
      if i < c.ck then Bytes.copy data.(i)
      else combine c c.rows.(i) data len)

(* --- Decode -------------------------------------------------------- *)

type shortfall = { have : int; need : int }

let decode c ~page_bytes shards =
  let len = shard_length c ~page_bytes in
  (* keep the first shard seen per valid index, then pick the k lowest
     indices — deterministic in the argument list alone *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (i, s) ->
      if
        i >= 0
        && i < width c
        && Bytes.length s = len
        && not (Hashtbl.mem seen i)
      then Hashtbl.replace seen i s)
    shards;
  let have = Hashtbl.length seen in
  if have < c.ck then Error (`Unrecoverable { have; need = c.ck })
  else begin
    let picked =
      Hashtbl.fold (fun i s acc -> (i, s) :: acc) seen []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> fun l -> List.filteri (fun n _ -> n < c.ck) l
    in
    let idxs = Array.of_list (List.map fst picked) in
    let subs = Array.of_list (List.map snd picked) in
    let data =
      if Array.for_all (fun i -> i < c.ck) idxs then begin
        (* all-data fast path: the shards are the page *)
        let d = Array.make c.ck Bytes.empty in
        Array.iteri (fun n i -> d.(i) <- subs.(n)) idxs;
        d
      end
      else begin
        let sub = Array.map (fun i -> c.rows.(i)) idxs in
        let dec = invert sub in
        Array.init c.ck (fun i -> combine c dec.(i) subs len)
      end
    in
    let page = Bytes.make page_bytes '\000' in
    for i = 0 to c.ck - 1 do
      let off = i * len in
      let n = min len (page_bytes - off) in
      if n > 0 then Bytes.blit data.(i) 0 page off n
    done;
    Ok page
  end
