(** The backing-store interface a paged stretch driver writes through.

    The paged driver ({!Core.Sd_paged}) is parameterised over this
    record exactly as it is over a {!Policy.Spec.t}: the default
    ({!of_sfs}) delegates every operation to the swapfile's SFS data
    path and is bit-for-bit the seed behaviour; {!Store.backing} puts
    the tiered store (local RAM cache → remote memory node → disk) in
    front of the same swapfile. Page slots are indexed in the
    swapfile's extent page space throughout, so the driver's blok
    bitmap, the out-of-place rewrite rule and the journal's committed
    set all keep their meaning unchanged. *)

type io_error = [ `Lost_pages of int list | `Retired | `Crashed ]
(** Structurally {!Usbs.Sfs.io_error}; the same answering duties
    apply (read losses are noted by the layer that lost them, write
    losses are answered by the caller exactly once per slot). *)

type t = {
  label : string;
      (** names the backend in driver names and reports; ["sfs"] is
          the seed data path and leaves driver names untouched *)
  page_capacity : unit -> int;
  journaled : unit -> bool;
      (** the durability floor has an intent journal — committing
          write paths and the out-of-place rewrite rule apply *)
  read_pages : page_index:int -> npages:int -> (unit, io_error) result;
  write_page : page_index:int -> (unit, io_error) result;
  write_pages : page_index:int -> npages:int -> (unit, io_error) result;
  write_pages_commit :
    page_index:int ->
    npages:int ->
    pages:(int * int) list ->
    retire:(int * int) list ->
    (unit, io_error) result;
  slot_committed : int -> bool;
  extent : unit -> int * int;
      (** [(first_lba, nblocks)] of the durable extent — what
          fault-injection plans scope their bad bloks to *)
}

val of_sfs : Usbs.Sfs.swapfile -> t
(** Pure delegation to the swapfile's data path: the seed semantics,
    bit-for-bit. *)

(** {1 The backing hook point}

    Backing stacks resolve by name — ["sfs"] (here),
    ["tiered:cache-pages=24"] ({!Store}), ["fleet"] ({!Fleet}),
    ["zram"] ([Share.Sd_zram]) — through {!Registry}. A registered
    factory may need live capabilities a spec string cannot carry
    (an admitted network client, a shared zpool, somewhere to report
    the created store); the instantiation site passes those as
    {!type:cap}s, one {!type:ctx} per driver, so per-driver state
    stays per-driver (registry isolation rule). *)

type cap = ..
(** Capabilities for registered factories, extended by the providing
    modules ([Store.Tiered], [Fleet.Fleet_tier], [Share.Sd_zram.Zram]). *)

type ctx = cap list

type factory = ctx -> Usbs.Sfs.swapfile -> (t, string) result

val axis : factory Registry.axis
(** Hook point for backing-store names (axis ["backing"]). *)

val resolve : string -> (factory, Registry.error) result
