open Engine

let page_bytes = 8192 (* mirrors Store; one page on the wire *)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

type node = {
  nd_idx : int;
  nd_name : string;
  nd_remote : Remote_node.t;
  nd_link : Usnet.Link.t;
  nd_repair : Usnet.Link.client; (* fleet-owned probe/repair client *)
  mutable nd_streak : int; (* consecutive timeouts *)
  mutable nd_quarantined : bool;
  mutable nd_next_probe : Time.t;
  mutable nd_quarantines : int;
  mutable nd_readmissions : int;
}

type t = {
  sim : Sim.t;
  seed : int;
  replicas : int;
  quarantine_after : int;
  probe_period : Time.span;
  repair_period : Time.span;
  repair_budget : int;
  link_retries : int;
  retx_timeout : Time.span;
  nodes : node array;
  (* the placement book: pages the fleet believes it holds, keyed by
     [(owner, slot)], mapped to the replica node indices (primary
     first). Recorded only when at least one node acked the copy. *)
  pages : (string * int, int array) Hashtbl.t;
  mutable s_stores : int;
  mutable s_acks : int;
  mutable s_replica_skips : int;
  mutable s_replica_timeouts : int;
  mutable s_remote_fulls : int;
  mutable s_lost_primaries : int;
  mutable s_failovers : int;
  mutable s_rebuilds : int;
  mutable s_disk_fallbacks : int;
  mutable s_secondary_rebuilds : int;
  mutable s_retransmits : int;
  mutable s_quarantines : int;
  mutable s_readmissions : int;
  mutable s_probes : int;
  mutable s_probe_failures : int;
  mutable s_wipes_applied : int;
  mutable s_repair_rounds : int;
}

type stats = {
  stores : int;
  acks : int;
  replica_skips : int;
  replica_timeouts : int;
  remote_fulls : int;
  lost_primaries : int;
  failovers : int;
  rebuilds : int;
  disk_fallbacks : int;
  secondary_rebuilds : int;
  retransmits : int;
  quarantines : int;
  readmissions : int;
  probes : int;
  probe_failures : int;
  wipes_applied : int;
  repair_rounds : int;
}

type node_health = {
  nh_name : string;
  nh_used : int;
  nh_capacity : int;
  nh_quarantined : bool;
  nh_streak : int;
  nh_quarantines : int;
  nh_readmissions : int;
}

type store = {
  fl : t;
  mode : Store.mode;
  label : string;
  swap : Usbs.Sfs.swapfile;
  clients : Usnet.Link.client array; (* one per node, node order *)
  owner : string;
  cache_cap : int;
  lru : int Ilist.t; (* front = least recently used *)
  lnodes : (int, int Ilist.node) Hashtbl.t;
  evicting : (int, unit) Hashtbl.t;
  disk_valid : bool array;
  dead : bool array;
  mutable sx_cache_hits : int;
  mutable sx_fleet_hits : int;
  mutable sx_fleet_misses : int;
  mutable sx_promotes : int;
  mutable sx_demotes : int;
  mutable sx_write_fallbacks : int;
  mutable sx_clean_skips : int;
  mutable sx_lost_slots : int;
}

type store_stats = {
  st_cache_hits : int;
  st_fleet_hits : int;
  st_fleet_misses : int;
  st_promotes : int;
  st_demotes : int;
  st_write_fallbacks : int;
  st_clean_skips : int;
  st_lost_slots : int;
}

let metric name = if !Obs.enabled then Obs.Metrics.inc ("fleet." ^ name)

let smetric st name =
  if !Obs.enabled then Obs.Metrics.inc ~label:st.owner ("fleet." ^ name)

let node_gauges nd =
  if !Obs.enabled then begin
    let g n v = Obs.Metrics.set_gauge ~label:nd.nd_name ("fleet.node." ^ n) v in
    g "used_pages" (float_of_int (Remote_node.used_pages nd.nd_remote));
    g "quarantined" (if nd.nd_quarantined then 1.0 else 0.0);
    g "streak" (float_of_int nd.nd_streak)
  end

(* ------------------------------------------------------------------ *)
(* Placement: seeded rendezvous (highest-random-weight) hashing        *)

(* A splitmix-style finaliser over the 63-bit int; constants fit in
   OCaml's native int. Deterministic in its argument alone. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x4cf5ad432745937 land max_int in
  let x = x lxor (x lsr 27) in
  let x = x * 0x1d8e4e27c47d124 land max_int in
  x lxor (x lsr 31)

let weight t ~node_name ~owner ~slot =
  mix
    (mix (t.seed lxor Hashtbl.hash node_name)
    lxor (Hashtbl.hash owner * 0x9e3779b9)
    lxor (slot * 0x85ebca6b))

(* Every node scores the page; the R highest win, the highest is
   primary. A pure function of (seed, node names, owner, slot), so a
   restarted fleet over the same nodes recomputes the same book. *)
let placement t ~owner ~slot =
  let scored =
    Array.map
      (fun nd -> (weight t ~node_name:nd.nd_name ~owner ~slot, nd.nd_idx))
      t.nodes
  in
  Array.sort (fun (wa, ia) (wb, ib) -> compare (wb, ib) (wa, ia)) scored;
  Array.init t.replicas (fun i -> snd scored.(i))

let node_names t = Array.map (fun nd -> nd.nd_name) t.nodes

(* ------------------------------------------------------------------ *)
(* Node health                                                         *)

let quarantine t nd =
  if not nd.nd_quarantined then begin
    nd.nd_quarantined <- true;
    nd.nd_quarantines <- nd.nd_quarantines + 1;
    t.s_quarantines <- t.s_quarantines + 1;
    nd.nd_next_probe <- Time.add (Sim.now t.sim) t.probe_period;
    metric "quarantine";
    node_gauges nd
  end

let note_timeout t nd =
  nd.nd_streak <- nd.nd_streak + 1;
  if nd.nd_streak >= t.quarantine_after then quarantine t nd

let note_ok nd = nd.nd_streak <- 0

let readmit t nd =
  nd.nd_quarantined <- false;
  nd.nd_streak <- 0;
  nd.nd_readmissions <- nd.nd_readmissions + 1;
  t.s_readmissions <- t.s_readmissions + 1;
  metric "readmit";
  node_gauges nd

(* Wipes are applied lazily: before any fleet operation consults a
   node's contents, honour any pending {!Inject.node_wipe_due} (a
   crash implies a wipe — the RAM went with the node). *)
let poll_wipes t =
  let now = Sim.now t.sim in
  Array.iter
    (fun nd ->
      if Inject.node_wipe_due ~name:nd.nd_name ~now then begin
        Remote_node.wipe nd.nd_remote;
        t.s_wipes_applied <- t.s_wipes_applied + 1;
        metric "wipe";
        node_gauges nd
      end)
    t.nodes

(* ------------------------------------------------------------------ *)
(* Link transfers                                                      *)

(* MTU-sized fragments of one page, smallest last (per node link). *)
let fragments nd =
  let mtu = (Usnet.Link.params nd.nd_link).Usnet.Net_params.mtu in
  let n = (page_bytes + mtu - 1) / mtu in
  List.init n (fun i ->
      if i = n - 1 then page_bytes - ((n - 1) * mtu) else mtu)

(* One packet towards [nd] on [client]. The transmit burns the
   client's slice whether or not the far end is reachable — the
   sender cannot know — then the packet is lost if the node is
   crashed/partitioned ({!Inject.node_reachable}) or the link's own
   fault plan drops it. Lost packets retransmit on the
   {!Store.backoff} ladder, [retries] times, then time out. *)
let send_frag t nd client ~retries bytes =
  let rec attempt left n =
    match Usnet.Link.transmit nd.nd_link client ~bytes with
    | Error `Retired -> Error `Timeout
    | Ok () ->
        let delivered =
          Inject.node_reachable ~name:nd.nd_name ~now:(Sim.now t.sim)
          &&
          match Inject.link ~name:(Usnet.Link.name nd.nd_link) with
          | Inject.Deliver -> true
          | Inject.Delay d ->
              Proc.sleep d;
              true
          | Inject.Drop -> false
        in
        if delivered then Ok ()
        else begin
          (* waited the ack deadline in vain *)
          Proc.sleep t.retx_timeout;
          if left > 0 then begin
            t.s_retransmits <- t.s_retransmits + 1;
            metric "retransmit";
            Proc.sleep (Store.backoff ~base:t.retx_timeout ~attempt:n);
            attempt (left - 1) (n + 1)
          end
          else Error `Timeout
        end
  in
  attempt retries 0

let send_frags t nd client ~retries frags =
  let rec go = function
    | [] -> Ok ()
    | b :: rest -> (
        match send_frag t nd client ~retries b with
        | Ok () -> go rest
        | Error _ as e -> e)
  in
  go frags

(* Push one page to [nd]: fragments out, node service, store. Health
   is noted here; the caller classifies the outcome. *)
let push_page t nd client ~retries ~owner ~slot =
  match send_frags t nd client ~retries (fragments nd) with
  | Error `Timeout ->
      note_timeout t nd;
      `Timeout
  | Ok () -> (
      Proc.sleep (Remote_node.service_time nd.nd_remote);
      note_ok nd;
      match Remote_node.store nd.nd_remote ~owner ~slot with
      | Ok () ->
          t.s_acks <- t.s_acks + 1;
          `Acked
      | Error `Remote_full -> `Full)

(* Pull one page back from [nd]: 64-byte request out, node service,
   fragments back — all on [client]'s guarantee. [`Stale] is a miss
   reply: the node answered (health-wise it is fine) but no longer
   holds the copy. *)
let fetch_page t nd client ~retries ~owner ~slot =
  match send_frag t nd client ~retries 64 with
  | Error `Timeout ->
      note_timeout t nd;
      `Timeout
  | Ok () ->
      Proc.sleep (Remote_node.service_time nd.nd_remote);
      if not (Remote_node.holds nd.nd_remote ~owner ~slot) then begin
        note_ok nd;
        `Stale
      end
      else (
        match send_frags t nd client ~retries (fragments nd) with
        | Ok () ->
            note_ok nd;
            `Ok
        | Error `Timeout ->
            note_timeout t nd;
            `Timeout)

(* ------------------------------------------------------------------ *)
(* Probe / repair                                                      *)

let probe t nd =
  t.s_probes <- t.s_probes + 1;
  metric "probe";
  match send_frag t nd nd.nd_repair ~retries:0 64 with
  | Ok () ->
      Proc.sleep (Remote_node.service_time nd.nd_remote);
      readmit t nd
  | Error `Timeout ->
      t.s_probe_failures <- t.s_probe_failures + 1;
      nd.nd_next_probe <- Time.add (Sim.now t.sim) t.probe_period

let probe_due t =
  let now = Sim.now t.sim in
  Array.iter
    (fun nd -> if nd.nd_quarantined && now >= nd.nd_next_probe then probe t nd)
    t.nodes

(* Rebuild one copy: read it from [src], write it to [dst], both over
   the fleet's own repair clients. The placement book is re-checked
   after the transfers — the owning domain may have overwritten the
   page while the copy was on the wire, in which case the rebuilt
   bytes are stale and must not be stored. *)
let repair_copy t ~src ~dst ~owner ~slot =
  match fetch_page t src src.nd_repair ~retries:t.link_retries ~owner ~slot with
  | (`Timeout | `Stale) as e -> e
  | `Ok -> (
      if not (Hashtbl.mem t.pages (owner, slot)) then `Stale
      else
        match
          push_page t dst dst.nd_repair ~retries:t.link_retries ~owner ~slot
        with
        | `Acked ->
            t.s_stores <- t.s_stores + 1;
            metric "store";
            `Acked
        | (`Full | `Timeout) as e -> e)

let repair_round t =
  t.s_repair_rounds <- t.s_repair_rounds + 1;
  poll_wipes t;
  probe_due t;
  let budget = ref t.repair_budget in
  (* deterministic scan order regardless of hash-table internals *)
  let book =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pages []
    |> List.sort compare
  in
  List.iter
    (fun ((owner, slot), reps) ->
      if !budget > 0 then begin
        let holds i =
          Remote_node.holds t.nodes.(i).nd_remote ~owner ~slot
        in
        let live i = not t.nodes.(i).nd_quarantined in
        match Array.to_list reps |> List.filter (fun i -> live i && holds i) with
        | [] -> () (* no reachable survivor; the read path answers *)
        | src_idx :: _ ->
            let src = t.nodes.(src_idx) in
            Array.iter
              (fun i ->
                if !budget > 0 && live i && not (holds i) then begin
                  decr budget;
                  match
                    repair_copy t ~src ~dst:t.nodes.(i) ~owner ~slot
                  with
                  | `Acked ->
                      if i = reps.(0) then begin
                        (* the primary was gone and repair answered *)
                        t.s_lost_primaries <- t.s_lost_primaries + 1;
                        t.s_rebuilds <- t.s_rebuilds + 1;
                        metric "rebuild"
                      end
                      else begin
                        t.s_secondary_rebuilds <- t.s_secondary_rebuilds + 1;
                        metric "secondary_rebuild"
                      end
                  | `Full | `Timeout | `Stale -> ()
                end)
              reps
      end)
    book;
  Array.iter (node_gauges) t.nodes

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?(replicas = 2) ?(quarantine_after = 3)
    ?(probe_period = Time.ms 50) ?(repair_period = Time.ms 25)
    ?(repair_budget = 8) ?(link_retries = 3) ?(retx_timeout = Time.ms 1)
    ?(repair_qos = (Time.ms 20, Time.ms 2)) ?(repair = true) ~seed ~nodes sim =
  if nodes = [] then invalid_arg "Fleet.create: empty node list";
  if replicas < 1 then invalid_arg "Fleet.create: replicas must be >= 1";
  if quarantine_after < 1 then
    invalid_arg "Fleet.create: quarantine_after must be >= 1";
  let period, slice = repair_qos in
  let mk_node i (name, remote, link) =
    if name <> Usnet.Link.name link then
      invalid_arg
        (Printf.sprintf "Fleet.create: node %s does not match its link %s"
           name (Usnet.Link.name link));
    let repair_client =
      match
        Usnet.Link.admit link ~name:(name ^ ".repair") ~period ~slice
          ~extra:true ()
      with
      | Ok c -> c
      | Error e ->
          invalid_arg
            ("Fleet.create: repair client refused: "
            ^ Usnet.Link.admit_error_message e)
    in
    { nd_idx = i;
      nd_name = name;
      nd_remote = remote;
      nd_link = link;
      nd_repair = repair_client;
      nd_streak = 0;
      nd_quarantined = false;
      nd_next_probe = Time.zero;
      nd_quarantines = 0;
      nd_readmissions = 0 }
  in
  let t =
    { sim;
      seed;
      replicas = min replicas (List.length nodes);
      quarantine_after;
      probe_period;
      repair_period;
      repair_budget;
      link_retries;
      retx_timeout;
      nodes = Array.of_list (List.mapi mk_node nodes);
      pages = Hashtbl.create 256;
      s_stores = 0;
      s_acks = 0;
      s_replica_skips = 0;
      s_replica_timeouts = 0;
      s_remote_fulls = 0;
      s_lost_primaries = 0;
      s_failovers = 0;
      s_rebuilds = 0;
      s_disk_fallbacks = 0;
      s_secondary_rebuilds = 0;
      s_retransmits = 0;
      s_quarantines = 0;
      s_readmissions = 0;
      s_probes = 0;
      s_probe_failures = 0;
      s_wipes_applied = 0;
      s_repair_rounds = 0 }
  in
  if repair then
    ignore
      (Proc.spawn ~name:"fleet.repair" sim (fun () ->
           let rec loop () =
             Proc.sleep t.repair_period;
             repair_round t;
             loop ()
           in
           loop ()));
  t

let admit_clients t ~name ~period ~slice ?extra ?queue_depth ?laxity () =
  let admitted = ref [] in
  let rec go i =
    if i = Array.length t.nodes then
      Ok (Array.of_list (List.rev !admitted))
    else
      let nd = t.nodes.(i) in
      match
        Usnet.Link.admit nd.nd_link
          ~name:(name ^ "@" ^ nd.nd_name)
          ~period ~slice ?extra ?queue_depth ?laxity ()
      with
      | Ok c ->
          admitted := c :: !admitted;
          go (i + 1)
      | Error e ->
          List.iteri
            (fun j c -> Usnet.Link.retire t.nodes.(i - 1 - j).nd_link c)
            !admitted;
          Error e
  in
  go 0

let attach ?(mode = Store.Write_through) ?(cache_pages = 32)
    ?(label = "fleet") t ~clients ~swap () =
  if cache_pages < 1 then invalid_arg "Fleet.attach: cache_pages must be >= 1";
  if Array.length clients <> Array.length t.nodes then
    invalid_arg "Fleet.attach: need one admitted client per node";
  let cap = Usbs.Sfs.page_capacity swap in
  { fl = t;
    mode;
    label;
    swap;
    clients;
    owner = Usbs.Sfs.swap_name swap;
    cache_cap = cache_pages;
    lru = Ilist.create ();
    lnodes = Hashtbl.create 64;
    evicting = Hashtbl.create 8;
    disk_valid = Array.make (max 1 cap) true;
    dead = Array.make (max 1 cap) false;
    sx_cache_hits = 0;
    sx_fleet_hits = 0;
    sx_fleet_misses = 0;
    sx_promotes = 0;
    sx_demotes = 0;
    sx_write_fallbacks = 0;
    sx_clean_skips = 0;
    sx_lost_slots = 0 }

(* ------------------------------------------------------------------ *)
(* Local RAM tier (LRU over slot indices, as in Store)                 *)

let cached st s = Hashtbl.mem st.lnodes s

let touch st s =
  match Hashtbl.find_opt st.lnodes s with
  | Some n -> Ilist.move_back st.lru n
  | None -> ()

let drop_cache st s =
  match Hashtbl.find_opt st.lnodes s with
  | Some n ->
      Ilist.remove st.lru n;
      Hashtbl.remove st.lnodes s
  | None -> ()

let tracked st s = Hashtbl.mem st.fl.pages (st.owner, s)

(* Fresh contents for a slot: every replica copy is stale. The drops
   are metadata at the nodes; the placement-book entry goes with
   them, so the fleet never serves the old bytes. *)
let drop_fleet st s =
  match Hashtbl.find_opt st.fl.pages (st.owner, s) with
  | Some reps ->
      Array.iter
        (fun i ->
          Remote_node.drop st.fl.nodes.(i).nd_remote ~owner:st.owner ~slot:s)
        reps;
      Hashtbl.remove st.fl.pages (st.owner, s)
  | None -> ()

(* Same duty as Store.disk_write_slot: a dirty page no node accepted
   lands on the disk; if the disk eats the write too the fleet held
   the last copy and the slot is dead. *)
let disk_write_slot st s =
  match Usbs.Sfs.write_page st.swap ~page_index:s with
  | Ok () -> st.disk_valid.(s) <- true
  | Error (`Lost_pages _) ->
      Inject.note_killed "fleet.demote";
      st.dead.(s) <- true;
      st.sx_lost_slots <- st.sx_lost_slots + 1
  | Error (`Retired | `Crashed) -> ()

(* Push one evicted slot to its replica set. Inclusive with the
   fleet: a slot already in the placement book just leaves the
   cache. Quarantined replicas are skipped (repair rebuilds them);
   the eviction succeeds if at least one node acked. *)
let demote st s =
  if (not (tracked st s)) && not st.dead.(s) then begin
    let t = st.fl in
    poll_wipes t;
    let dirty = not st.disk_valid.(s) in
    let reps = placement t ~owner:st.owner ~slot:s in
    let placed = ref 0 in
    Array.iter
      (fun i ->
        let nd = t.nodes.(i) in
        if nd.nd_quarantined then
          t.s_replica_skips <- t.s_replica_skips + 1
        else if not (Remote_node.has_room nd.nd_remote) then begin
          (* known-full before any byte moves, as in Store *)
          t.s_remote_fulls <- t.s_remote_fulls + 1;
          metric "remote_full"
        end
        else
          match
            push_page t nd st.clients.(i) ~retries:t.link_retries
              ~owner:st.owner ~slot:s
          with
          | `Acked ->
              incr placed;
              t.s_stores <- t.s_stores + 1;
              metric "store"
          | `Full ->
              t.s_remote_fulls <- t.s_remote_fulls + 1;
              metric "remote_full"
          | `Timeout -> t.s_replica_timeouts <- t.s_replica_timeouts + 1)
      reps;
    if !placed > 0 then begin
      Hashtbl.replace t.pages (st.owner, s) reps;
      st.sx_demotes <- st.sx_demotes + 1
    end
    else if dirty then begin
      st.sx_write_fallbacks <- st.sx_write_fallbacks + 1;
      disk_write_slot st s
    end
    else st.sx_clean_skips <- st.sx_clean_skips + 1
  end

let rec shrink st =
  if Hashtbl.length st.lnodes > st.cache_cap then begin
    let victim =
      Ilist.fold
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> if Hashtbl.mem st.evicting s then None else Some s)
        None st.lru
    in
    match victim with
    | None -> ()
    | Some s ->
        Hashtbl.replace st.evicting s ();
        demote st s;
        Hashtbl.remove st.evicting s;
        drop_cache st s;
        shrink st
  end

let insert_cache st s =
  if not st.dead.(s) then begin
    if cached st s then touch st s
    else begin
      let n = Ilist.make_node s in
      Hashtbl.replace st.lnodes s n;
      Ilist.push_back st.lru n;
      shrink st
    end
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

(* Serve one tracked slot from the fleet: primary first, then the
   surviving replicas in placement order. Exactly one of
   failover/disk-fallback answers a lost primary here (rebuilds are
   the repair process's entry). *)
let fetch_fleet st s =
  let t = st.fl in
  poll_wipes t;
  let reps = Hashtbl.find t.pages (st.owner, s) in
  let try_node i =
    let nd = t.nodes.(i) in
    if nd.nd_quarantined then `Skip
    else
      fetch_page t nd st.clients.(i) ~retries:t.link_retries ~owner:st.owner
        ~slot:s
  in
  match try_node reps.(0) with
  | `Ok -> `Served
  | `Skip | `Stale | `Timeout ->
      t.s_lost_primaries <- t.s_lost_primaries + 1;
      metric "lost_primary";
      let rec failover k =
        if k >= Array.length reps then `All_lost
        else
          match try_node reps.(k) with
          | `Ok ->
              t.s_failovers <- t.s_failovers + 1;
              metric "failover";
              `Served
          | `Skip | `Stale | `Timeout -> failover (k + 1)
      in
      failover 1

let read_pages st ~page_index ~npages =
  let lost = ref [] in
  let fatal = ref None in
  let run_start = ref 0 and run_len = ref 0 in
  (* coalesce consecutive disk-served slots into one SFS transaction *)
  let flush_run () =
    if !run_len > 0 then begin
      (match
         Usbs.Sfs.read_pages st.swap ~page_index:!run_start ~npages:!run_len
       with
      | Ok () ->
          for s = !run_start to !run_start + !run_len - 1 do
            insert_cache st s
          done
      | Error (`Lost_pages l) ->
          for s = !run_start to !run_start + !run_len - 1 do
            if List.mem s l then lost := s :: !lost else insert_cache st s
          done
      | Error ((`Retired | `Crashed) as e) -> fatal := Some e);
      run_len := 0
    end
  in
  let from_disk s =
    if !run_len = 0 then begin
      run_start := s;
      run_len := 1
    end
    else run_len := !run_len + 1
  in
  let i = ref page_index in
  while !fatal = None && !i < page_index + npages do
    let s = !i in
    if st.dead.(s) then begin
      flush_run ();
      lost := s :: !lost
    end
    else if cached st s then begin
      flush_run ();
      touch st s;
      st.sx_cache_hits <- st.sx_cache_hits + 1;
      smetric st "cache_hit"
    end
    else if tracked st s then begin
      flush_run ();
      match fetch_fleet st s with
      | `Served ->
          st.sx_fleet_hits <- st.sx_fleet_hits + 1;
          smetric st "hit";
          st.sx_promotes <- st.sx_promotes + 1;
          (* inclusive: the replicas keep their copies *)
          insert_cache st s
      | `All_lost ->
          st.fl.s_disk_fallbacks <- st.fl.s_disk_fallbacks + 1;
          smetric st "disk_fallback";
          if st.disk_valid.(s) then begin
            from_disk s;
            flush_run ()
          end
          else begin
            st.sx_lost_slots <- st.sx_lost_slots + 1;
            st.dead.(s) <- true;
            lost := s :: !lost
          end
    end
    else begin
      st.sx_fleet_misses <- st.sx_fleet_misses + 1;
      from_disk s
    end;
    incr i
  done;
  flush_run ();
  match !fatal with
  | Some (`Retired | `Crashed) as e -> Error (Option.get e)
  | None ->
      if !lost = [] then Ok () else Error (`Lost_pages (List.rev !lost))

(* ------------------------------------------------------------------ *)
(* Writes (mirrors Store: disk is the durability floor)                *)

let overwrite st s ~disk =
  st.dead.(s) <- false;
  drop_fleet st s;
  st.disk_valid.(s) <- disk;
  insert_cache st s

let write_range_through st ~page_index ~npages =
  match Usbs.Sfs.write_pages st.swap ~page_index ~npages with
  | Ok () ->
      for s = page_index to page_index + npages - 1 do
        overwrite st s ~disk:true
      done;
      Ok ()
  | Error (`Lost_pages l) as e ->
      for s = page_index to page_index + npages - 1 do
        if List.mem s l then begin
          drop_cache st s;
          drop_fleet st s;
          st.dead.(s) <- true
        end
        else overwrite st s ~disk:true
      done;
      e
  | Error (`Retired | `Crashed) as e -> e

let write_pages st ~page_index ~npages =
  match st.mode with
  | Store.Write_through -> write_range_through st ~page_index ~npages
  | Store.Write_back ->
      for s = page_index to page_index + npages - 1 do
        overwrite st s ~disk:false
      done;
      Ok ()

let write_page st ~page_index = write_pages st ~page_index ~npages:1

let write_pages_commit st ~page_index ~npages ~pages ~retire =
  match
    Usbs.Sfs.write_pages_commit st.swap ~page_index ~npages ~pages ~retire
  with
  | Ok () ->
      for s = page_index to page_index + npages - 1 do
        overwrite st s ~disk:true
      done;
      Ok ()
  | Error (`Lost_pages l) as e ->
      for s = page_index to page_index + npages - 1 do
        if List.mem s l then begin
          drop_cache st s;
          drop_fleet st s;
          st.dead.(s) <- true
        end
        else overwrite st s ~disk:true
      done;
      e
  | Error (`Retired | `Crashed) as e -> e

let backing st =
  { Backing.label = st.label;
    page_capacity = (fun () -> Usbs.Sfs.page_capacity st.swap);
    journaled = (fun () -> Usbs.Sfs.swap_journaled st.swap);
    read_pages =
      (fun ~page_index ~npages -> read_pages st ~page_index ~npages);
    write_page = (fun ~page_index -> write_page st ~page_index);
    write_pages =
      (fun ~page_index ~npages -> write_pages st ~page_index ~npages);
    write_pages_commit =
      (fun ~page_index ~npages ~pages ~retire ->
        write_pages_commit st ~page_index ~npages ~pages ~retire);
    slot_committed = (fun slot -> Usbs.Sfs.slot_committed st.swap slot);
    extent =
      (fun () ->
        (Usbs.Sfs.extent_start st.swap, Usbs.Sfs.extent_blocks st.swap)) }

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let stats t =
  { stores = t.s_stores;
    acks = t.s_acks;
    replica_skips = t.s_replica_skips;
    replica_timeouts = t.s_replica_timeouts;
    remote_fulls = t.s_remote_fulls;
    lost_primaries = t.s_lost_primaries;
    failovers = t.s_failovers;
    rebuilds = t.s_rebuilds;
    disk_fallbacks = t.s_disk_fallbacks;
    secondary_rebuilds = t.s_secondary_rebuilds;
    retransmits = t.s_retransmits;
    quarantines = t.s_quarantines;
    readmissions = t.s_readmissions;
    probes = t.s_probes;
    probe_failures = t.s_probe_failures;
    wipes_applied = t.s_wipes_applied;
    repair_rounds = t.s_repair_rounds }

let health t =
  Array.to_list
    (Array.map
       (fun nd ->
         { nh_name = nd.nd_name;
           nh_used = Remote_node.used_pages nd.nd_remote;
           nh_capacity = Remote_node.capacity nd.nd_remote;
           nh_quarantined = nd.nd_quarantined;
           nh_streak = nd.nd_streak;
           nh_quarantines = nd.nd_quarantines;
           nh_readmissions = nd.nd_readmissions })
       t.nodes)

let store_stats st =
  { st_cache_hits = st.sx_cache_hits;
    st_fleet_hits = st.sx_fleet_hits;
    st_fleet_misses = st.sx_fleet_misses;
    st_promotes = st.sx_promotes;
    st_demotes = st.sx_demotes;
    st_write_fallbacks = st.sx_write_fallbacks;
    st_clean_skips = st.sx_clean_skips;
    st_lost_slots = st.sx_lost_slots }

let books_balanced t =
  t.s_stores = t.s_acks
  && t.s_lost_primaries = t.s_failovers + t.s_rebuilds + t.s_disk_fallbacks
