open Engine

let page_bytes = 8192 (* mirrors Store; one page on the wire *)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

type redundancy = Replicated of int | Erasure of { k : int; m : int }

type node = {
  nd_idx : int;
  nd_name : string;
  nd_remote : Remote_node.t;
  nd_link : Usnet.Link.t;
  nd_repair : Usnet.Link.client; (* fleet-owned probe/repair client *)
  mutable nd_member : bool; (* in the placement ring right now *)
  mutable nd_streak : int; (* consecutive timeouts *)
  mutable nd_quarantined : bool;
  mutable nd_next_probe : Time.t;
  mutable nd_quarantines : int;
  mutable nd_readmissions : int;
  mutable nd_stores : int; (* entries this node acked *)
  mutable nd_serves : int; (* reads this node answered *)
  mutable nd_failovers : int; (* reads it answered as a failover *)
}

type t = {
  sim : Sim.t;
  seed : int;
  mode : redundancy;
  ec : Ec.code option; (* Some iff mode is Erasure *)
  width : int; (* entries placed per page: R, or k + m *)
  quarantine_after : int;
  probe_period : Time.span;
  repair_period : Time.span;
  repair_budget : int;
  link_retries : int;
  retx_timeout : Time.span;
  nodes : node array; (* members first, then standby *)
  (* the placement book: pages the fleet believes it holds, keyed by
     [(owner, slot)], mapped to the node index per stripe position
     (replicated: copy 0 = primary; erasure: position = shard index).
     Recorded only when enough entries were acked to recover the
     page. Repair mutates entries in place as it migrates shards. *)
  pages : (string * int, int array) Hashtbl.t;
  mutable s_stores : int;
  mutable s_acks : int;
  mutable s_replica_skips : int;
  mutable s_replica_timeouts : int;
  mutable s_remote_fulls : int;
  mutable s_lost_primaries : int;
  mutable s_failovers : int;
  mutable s_rebuilds : int;
  mutable s_disk_fallbacks : int;
  mutable s_secondary_rebuilds : int;
  mutable s_lost_shards : int;
  mutable s_degraded_reads : int;
  mutable s_reconstructions : int;
  mutable s_corrupt_shards : int;
  mutable s_migrations : int;
  mutable s_node_joins : int;
  mutable s_node_retires : int;
  mutable s_retransmits : int;
  mutable s_quarantines : int;
  mutable s_readmissions : int;
  mutable s_probes : int;
  mutable s_probe_failures : int;
  mutable s_wipes_applied : int;
  mutable s_repair_rounds : int;
}

type stats = {
  stores : int;
  acks : int;
  replica_skips : int;
  replica_timeouts : int;
  remote_fulls : int;
  lost_primaries : int;
  failovers : int;
  rebuilds : int;
  disk_fallbacks : int;
  secondary_rebuilds : int;
  lost_shards : int;
  degraded_reads : int;
  reconstructions : int;
  corrupt_shards : int;
  migrations : int;
  node_joins : int;
  node_retires : int;
  retransmits : int;
  quarantines : int;
  readmissions : int;
  probes : int;
  probe_failures : int;
  wipes_applied : int;
  repair_rounds : int;
}

type node_health = {
  nh_name : string;
  nh_member : bool;
  nh_used : int;
  nh_capacity : int;
  nh_quarantined : bool;
  nh_streak : int;
  nh_quarantines : int;
  nh_readmissions : int;
  nh_stores : int;
  nh_serves : int;
  nh_failovers : int;
}

type store = {
  fl : t;
  mode : Store.mode;
  label : string;
  swap : Usbs.Sfs.swapfile;
  clients : Usnet.Link.client array; (* one per node, node order *)
  owner : string;
  cache_cap : int;
  lru : int Ilist.t; (* front = least recently used *)
  lnodes : (int, int Ilist.node) Hashtbl.t;
  evicting : (int, unit) Hashtbl.t;
  disk_valid : bool array;
  dead : bool array;
  mutable sx_cache_hits : int;
  mutable sx_fleet_hits : int;
  mutable sx_fleet_misses : int;
  mutable sx_promotes : int;
  mutable sx_demotes : int;
  mutable sx_write_fallbacks : int;
  mutable sx_clean_skips : int;
  mutable sx_lost_slots : int;
}

type store_stats = {
  st_cache_hits : int;
  st_fleet_hits : int;
  st_fleet_misses : int;
  st_promotes : int;
  st_demotes : int;
  st_write_fallbacks : int;
  st_clean_skips : int;
  st_lost_slots : int;
}

let metric name = if !Obs.enabled then Obs.Metrics.inc ("fleet." ^ name)

let smetric st name =
  if !Obs.enabled then Obs.Metrics.inc ~label:st.owner ("fleet." ^ name)

let node_gauges nd =
  if !Obs.enabled then begin
    let g n v = Obs.Metrics.set_gauge ~label:nd.nd_name ("fleet.node." ^ n) v in
    g "used_pages" (float_of_int (Remote_node.used_pages nd.nd_remote));
    g "member" (if nd.nd_member then 1.0 else 0.0);
    g "quarantined" (if nd.nd_quarantined then 1.0 else 0.0);
    g "streak" (float_of_int nd.nd_streak)
  end

(* Which shard an entry at stripe position [p] is keyed as at the
   node: replicated copies are all the whole page (shard 0), erasure
   positions are distinct shards. *)
let shard_of t p = match t.ec with None -> 0 | Some _ -> p

(* Bytes of one entry on the wire: a whole page, or one shard. *)
let xfer_len t =
  match t.ec with None -> page_bytes | Some c -> Ec.shard_length c ~page_bytes

(* Acked entries needed before a placement is worth booking: one copy
   recovers a replicated page, k shards an erasure-coded one. *)
let min_placed t = match t.ec with None -> 1 | Some c -> Ec.k c

(* ------------------------------------------------------------------ *)
(* Placement: seeded rendezvous (highest-random-weight) hashing        *)

(* A splitmix-style finaliser over the 63-bit int; constants fit in
   OCaml's native int. Deterministic in its argument alone. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x4cf5ad432745937 land max_int in
  let x = x lxor (x lsr 27) in
  let x = x * 0x1d8e4e27c47d124 land max_int in
  x lxor (x lsr 31)

let weight t ~node_name ~owner ~slot =
  mix
    (mix (t.seed lxor Hashtbl.hash node_name)
    lxor (Hashtbl.hash owner * 0x9e3779b9)
    lxor (slot * 0x85ebca6b))

(* Every member node scores the page; the [width] highest win (the
   highest is the primary / shard 0). A pure function of (seed,
   member names, owner, slot), so a restarted fleet over the same
   membership recomputes the same book — and a membership change
   re-ranks with minimal movement: pages whose top [width] set does
   not involve the joined/retired node keep their placement. *)
let placement t ~owner ~slot =
  let scored = ref [] in
  Array.iter
    (fun nd ->
      if nd.nd_member then
        scored :=
          (weight t ~node_name:nd.nd_name ~owner ~slot, nd.nd_idx) :: !scored)
    t.nodes;
  let scored =
    List.sort (fun (wa, ia) (wb, ib) -> compare (wb, ib) (wa, ia)) !scored
  in
  Array.of_list
    (List.filteri (fun n _ -> n < t.width) scored |> List.map snd)

let node_names t = Array.map (fun nd -> nd.nd_name) t.nodes

let member_names t =
  Array.of_list
    (Array.to_list t.nodes
    |> List.filter (fun nd -> nd.nd_member)
    |> List.map (fun nd -> nd.nd_name))

let member_count t =
  Array.fold_left (fun n nd -> if nd.nd_member then n + 1 else n) 0 t.nodes

let redundancy (t : t) = t.mode
let stripe_width t = t.width

(* ------------------------------------------------------------------ *)
(* Node health and membership                                          *)

let quarantine t nd =
  if not nd.nd_quarantined then begin
    nd.nd_quarantined <- true;
    nd.nd_quarantines <- nd.nd_quarantines + 1;
    t.s_quarantines <- t.s_quarantines + 1;
    nd.nd_next_probe <- Time.add (Sim.now t.sim) t.probe_period;
    metric "quarantine";
    node_gauges nd
  end

let note_timeout t nd =
  nd.nd_streak <- nd.nd_streak + 1;
  if nd.nd_streak >= t.quarantine_after then quarantine t nd

let note_ok nd = nd.nd_streak <- 0

let readmit t nd =
  nd.nd_quarantined <- false;
  nd.nd_streak <- 0;
  nd.nd_readmissions <- nd.nd_readmissions + 1;
  t.s_readmissions <- t.s_readmissions + 1;
  metric "readmit";
  node_gauges nd

let find_node t name =
  Array.to_list t.nodes |> List.find_opt (fun nd -> nd.nd_name = name)

let apply_join t nd =
  nd.nd_member <- true;
  t.s_node_joins <- t.s_node_joins + 1;
  metric "node_join";
  node_gauges nd

let apply_retire t nd =
  nd.nd_member <- false;
  t.s_node_retires <- t.s_node_retires + 1;
  metric "node_retire";
  node_gauges nd

let add_node t ~name =
  match find_node t name with
  | None -> invalid_arg ("Fleet.add_node: unknown node " ^ name)
  | Some nd ->
      if nd.nd_member then
        invalid_arg ("Fleet.add_node: already a member: " ^ name);
      apply_join t nd

let retire_node t ~name =
  match find_node t name with
  | None -> invalid_arg ("Fleet.retire_node: unknown node " ^ name)
  | Some nd ->
      if not nd.nd_member then
        invalid_arg ("Fleet.retire_node: not a member: " ^ name);
      if member_count t - 1 < t.width then
        invalid_arg
          ("Fleet.retire_node: would leave fewer members than the stripe \
            width: " ^ name);
      apply_retire t nd

(* Faults are applied lazily: before any fleet operation consults a
   node's contents or the placement, honour pending wipes (a crash
   implies a wipe — the RAM went with the node) and membership
   changes from the chaos plan. Joins land before retires so a plan
   that swaps a node in and another out in the same instant never
   dips below the stripe width. *)
let poll_faults t =
  let now = Sim.now t.sim in
  Array.iter
    (fun nd ->
      if Inject.node_wipe_due ~name:nd.nd_name ~now then begin
        Remote_node.wipe nd.nd_remote;
        t.s_wipes_applied <- t.s_wipes_applied + 1;
        metric "wipe";
        node_gauges nd
      end;
      if (not nd.nd_member) && Inject.node_join_due ~name:nd.nd_name ~now then
        apply_join t nd)
    t.nodes;
  Array.iter
    (fun nd ->
      if
        nd.nd_member && member_count t > t.width
        && Inject.node_retire_due ~name:nd.nd_name ~now
      then apply_retire t nd)
    t.nodes

(* ------------------------------------------------------------------ *)
(* Link transfers                                                      *)

(* MTU-sized fragments of one [len]-byte entry, smallest last (per
   node link). *)
let fragments nd len =
  let mtu = (Usnet.Link.params nd.nd_link).Usnet.Net_params.mtu in
  let n = (len + mtu - 1) / mtu in
  List.init n (fun i -> if i = n - 1 then len - ((n - 1) * mtu) else mtu)

(* One packet towards [nd] on [client]. The transmit burns the
   client's slice whether or not the far end is reachable — the
   sender cannot know — then the packet is lost if the node is
   crashed/partitioned ({!Inject.node_reachable}) or the link's own
   fault plan drops it. Lost packets retransmit on the
   {!Store.backoff} ladder, [retries] times, then time out. *)
let send_frag t nd client ~retries bytes =
  let rec attempt left n =
    match Usnet.Link.transmit nd.nd_link client ~bytes with
    | Error `Retired -> Error `Timeout
    | Ok () ->
        let delivered =
          Inject.node_reachable ~name:nd.nd_name ~now:(Sim.now t.sim)
          &&
          match Inject.link ~name:(Usnet.Link.name nd.nd_link) with
          | Inject.Deliver -> true
          | Inject.Delay d ->
              Proc.sleep d;
              true
          | Inject.Drop -> false
        in
        if delivered then Ok ()
        else begin
          (* waited the ack deadline in vain *)
          Proc.sleep t.retx_timeout;
          if left > 0 then begin
            t.s_retransmits <- t.s_retransmits + 1;
            metric "retransmit";
            Proc.sleep (Store.backoff ~base:t.retx_timeout ~attempt:n);
            attempt (left - 1) (n + 1)
          end
          else Error `Timeout
        end
  in
  attempt retries 0

let send_frags t nd client ~retries frags =
  let rec go = function
    | [] -> Ok ()
    | b :: rest -> (
        match send_frag t nd client ~retries b with
        | Ok () -> go rest
        | Error _ as e -> e)
  in
  go frags

(* Fan [jobs] out as child processes and wait for them all. A stripe
   touches every node at once, but each leg rides a distinct node
   link under a distinct client of the same domain, so the domain is
   still charged per link while the stripe costs its slowest leg, not
   the sum of k + m serial transfers — without this a (4, 2) stripe
   pays ~6x the replicated path's latency per fault and queues
   collapse under load. Spawn order is fixed and the sim's event loop
   is deterministic, so same-seed runs stay byte-identical. *)
let in_parallel t jobs =
  match jobs with
  | [] -> ()
  | [ job ] -> job ()
  | jobs ->
      List.map (fun job -> Proc.spawn ~name:"fleet.xfer" t.sim job) jobs
      |> List.iter Proc.join

(* Push one entry (copy or shard) to [nd]: fragments out, node
   service, store. Health is noted here; the caller classifies the
   outcome. *)
let push_page t nd client ~retries ~shard ~owner ~slot =
  match send_frags t nd client ~retries (fragments nd (xfer_len t)) with
  | Error `Timeout ->
      note_timeout t nd;
      `Timeout
  | Ok () -> (
      Proc.sleep (Remote_node.service_time nd.nd_remote);
      note_ok nd;
      match Remote_node.store nd.nd_remote ~shard ~owner ~slot with
      | Ok () ->
          t.s_acks <- t.s_acks + 1;
          nd.nd_stores <- nd.nd_stores + 1;
          `Acked
      | Error `Remote_full -> `Full)

(* Pull one entry back from [nd]: 64-byte request out, node service,
   fragments back — all on [client]'s guarantee. [`Stale] is a miss
   reply: the node answered (health-wise it is fine) but no longer
   holds the entry. *)
let fetch_page t nd client ~retries ~shard ~owner ~slot =
  match send_frag t nd client ~retries 64 with
  | Error `Timeout ->
      note_timeout t nd;
      `Timeout
  | Ok () ->
      Proc.sleep (Remote_node.service_time nd.nd_remote);
      if not (Remote_node.holds nd.nd_remote ~shard ~owner ~slot) then begin
        note_ok nd;
        `Stale
      end
      else (
        match send_frags t nd client ~retries (fragments nd (xfer_len t)) with
        | Ok () ->
            note_ok nd;
            `Ok
        | Error `Timeout ->
            note_timeout t nd;
            `Timeout)

(* Fetch plus checksum verification: the {!Inject.shard_corrupt} site
   fires once per entry actually served, and a detected bit-flip is
   treated exactly like a lost entry — reconstruct, fail over or
   rebuild; never silently returned. *)
let fetch_shard t nd client ~retries ~shard ~owner ~slot =
  match fetch_page t nd client ~retries ~shard ~owner ~slot with
  | `Ok ->
      if Inject.shard_corrupt ~name:nd.nd_name then begin
        t.s_corrupt_shards <- t.s_corrupt_shards + 1;
        metric "corrupt_shard";
        `Corrupt
      end
      else `Ok
  | (`Stale | `Timeout) as e -> e

(* ------------------------------------------------------------------ *)
(* Probe / repair                                                      *)

let probe t nd =
  t.s_probes <- t.s_probes + 1;
  metric "probe";
  match send_frag t nd nd.nd_repair ~retries:0 64 with
  | Ok () ->
      Proc.sleep (Remote_node.service_time nd.nd_remote);
      readmit t nd
  | Error `Timeout ->
      t.s_probe_failures <- t.s_probe_failures + 1;
      nd.nd_next_probe <- Time.add (Sim.now t.sim) t.probe_period

let probe_due t =
  let now = Sim.now t.sim in
  Array.iter
    (fun nd -> if nd.nd_quarantined && now >= nd.nd_next_probe then probe t nd)
    t.nodes

(* The book entry is re-checked by physical equality after every
   transfer: the owning domain may have overwritten the page while
   bytes were on the wire (drop + re-demote installs a fresh array),
   in which case the rebuilt entry is stale and must not be stored. *)
let book_fresh t ~reps ~owner ~slot =
  match Hashtbl.find_opt t.pages (owner, slot) with
  | Some r when r == reps -> true
  | _ -> false

(* Materialise the entry for stripe position [p] at [dst], over the
   fleet's own repair clients.

   Cheap path first: if a live node still serves that very entry
   (any surviving copy in replicated mode; position [p]'s recorded
   holder in erasure mode), one fetch + one push moves it — this is
   what makes membership rebalancing "minimal movement". Otherwise a
   replicated page with no surviving copy cannot be repaired
   ([`No_source]; the read path answers), while an erasure-coded
   page is reconstructed from any [k] live shards: [k] shard fetches
   plus one shard push, the real price of parity repair. *)
let rebuild_shard t ~reps ~owner ~slot ~p ~dst =
  let live i = not t.nodes.(i).nd_quarantined in
  let holds q i =
    Remote_node.holds t.nodes.(i).nd_remote ~shard:(shard_of t q) ~owner ~slot
  in
  let push () =
    if not (book_fresh t ~reps ~owner ~slot) then `Stale
    else
      match
        push_page t dst dst.nd_repair ~retries:t.link_retries
          ~shard:(shard_of t p) ~owner ~slot
      with
      | `Acked ->
          t.s_stores <- t.s_stores + 1;
          metric "store";
          `Acked
      | (`Full | `Timeout) as e -> e
  in
  let direct_src =
    match t.ec with
    | None ->
        (* any copy is the page *)
        let src = ref None in
        Array.iter
          (fun i ->
            if !src = None && i <> dst.nd_idx && live i && holds 0 i then
              src := Some i)
          reps;
        !src
    | Some _ ->
        let i = reps.(p) in
        if i <> dst.nd_idx && live i && holds p i then Some i else None
  in
  match direct_src with
  | Some i -> (
      let src = t.nodes.(i) in
      match
        fetch_shard t src src.nd_repair ~retries:t.link_retries
          ~shard:(shard_of t p) ~owner ~slot
      with
      | (`Timeout | `Stale | `Corrupt) as e -> e
      | `Ok -> push ())
  | None -> (
      match t.ec with
      | None -> `No_source
      | Some c ->
          let k = Ec.k c in
          let srcs = ref [] and n = ref 0 in
          Array.iteri
            (fun q i ->
              if !n < k && q <> p && live i && holds q i then begin
                incr n;
                srcs := (q, i) :: !srcs
              end)
            reps;
          if !n < k then `No_source
          else begin
            let rec pull = function
              | [] -> push ()
              | (q, i) :: rest -> (
                  let src = t.nodes.(i) in
                  match
                    fetch_shard t src src.nd_repair ~retries:t.link_retries
                      ~shard:(shard_of t q) ~owner ~slot
                  with
                  | `Ok -> pull rest
                  | (`Timeout | `Stale | `Corrupt) as e -> e)
            in
            pull (List.rev !srcs)
          end)

let repair_round t =
  t.s_repair_rounds <- t.s_repair_rounds + 1;
  poll_faults t;
  probe_due t;
  let budget = ref t.repair_budget in
  (* Demand-driven order: hottest pages first — the per-page fault
     counts {!Obs.Heat} accumulates — with the (owner, slot) key as a
     deterministic tie-break (and the whole order when observability
     is off, matching the old book-scan behaviour). *)
  let heat (owner, slot) = Obs.Heat.count ~owner ~slot in
  let book =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pages []
    |> List.sort (fun (ka, _) (kb, _) ->
           let ha = heat ka and hb = heat kb in
           if ha <> hb then compare hb ha else compare ka kb)
  in
  List.iter
    (fun ((owner, slot), reps) ->
      if !budget > 0 then begin
        let want = placement t ~owner ~slot in
        for p = 0 to t.width - 1 do
          if !budget > 0 then begin
            let cur = reps.(p) and tgt = want.(p) in
            let cur_nd = t.nodes.(cur) and tgt_nd = t.nodes.(tgt) in
            let cur_has =
              (not cur_nd.nd_quarantined)
              && Remote_node.holds cur_nd.nd_remote ~shard:(shard_of t p)
                   ~owner ~slot
            in
            if (not (cur_has && cur = tgt)) && not tgt_nd.nd_quarantined
            then begin
              decr budget;
              match rebuild_shard t ~reps ~owner ~slot ~p ~dst:tgt_nd with
              | `Acked ->
                  (if cur_has && cur <> tgt then begin
                     (* rebalance: the entry lived, it just moved *)
                     Remote_node.drop cur_nd.nd_remote ~shard:(shard_of t p)
                       ~owner ~slot;
                     t.s_migrations <- t.s_migrations + 1;
                     metric "migrate"
                   end
                   else
                     match t.ec with
                     | Some _ ->
                         (* a lost shard observed and answered here *)
                         t.s_lost_shards <- t.s_lost_shards + 1;
                         t.s_rebuilds <- t.s_rebuilds + 1;
                         metric "shard_rebuild"
                     | None ->
                         if p = 0 then begin
                           (* the primary was gone and repair answered *)
                           t.s_lost_primaries <- t.s_lost_primaries + 1;
                           t.s_rebuilds <- t.s_rebuilds + 1;
                           metric "rebuild"
                         end
                         else begin
                           t.s_secondary_rebuilds <-
                             t.s_secondary_rebuilds + 1;
                           metric "secondary_rebuild"
                         end);
                  reps.(p) <- tgt
              | `No_source | `Full | `Timeout | `Stale | `Corrupt -> ()
            end
          end
        done
      end)
    book;
  Array.iter node_gauges t.nodes

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?(redundancy = Replicated 2) ?(standby = [])
    ?(quarantine_after = 3) ?(probe_period = Time.ms 50)
    ?(repair_period = Time.ms 25) ?(repair_budget = 8) ?(link_retries = 3)
    ?(retx_timeout = Time.ms 1) ?(repair_qos = (Time.ms 20, Time.ms 2))
    ?(repair = true) ~seed ~nodes sim =
  if nodes = [] then invalid_arg "Fleet.create: empty node list";
  if quarantine_after < 1 then
    invalid_arg "Fleet.create: quarantine_after must be >= 1";
  let members = List.length nodes in
  let ec, width =
    match redundancy with
    | Replicated r ->
        if r < 1 then invalid_arg "Fleet.create: replicas must be >= 1";
        (None, min r members)
    | Erasure { k; m } ->
        let c = Ec.make ~k ~m in
        (* Ec.make validated the (k, m) ranges *)
        if k + m > members then
          invalid_arg "Fleet.create: erasure needs k + m member nodes";
        (Some c, k + m)
  in
  let period, slice = repair_qos in
  let mk_node member i (name, remote, link) =
    if name <> Usnet.Link.name link then
      invalid_arg
        (Printf.sprintf "Fleet.create: node %s does not match its link %s"
           name (Usnet.Link.name link));
    let repair_client =
      match
        Usnet.Link.admit link ~name:(name ^ ".repair") ~period ~slice
          ~extra:true ()
      with
      | Ok c -> c
      | Error e ->
          invalid_arg
            ("Fleet.create: repair client refused: "
            ^ Usnet.Link.admit_error_message e)
    in
    { nd_idx = i;
      nd_name = name;
      nd_remote = remote;
      nd_link = link;
      nd_repair = repair_client;
      nd_member = member;
      nd_streak = 0;
      nd_quarantined = false;
      nd_next_probe = Time.zero;
      nd_quarantines = 0;
      nd_readmissions = 0;
      nd_stores = 0;
      nd_serves = 0;
      nd_failovers = 0 }
  in
  let all =
    List.mapi (mk_node true) nodes
    @ List.mapi (fun i n -> mk_node false (members + i) n) standby
  in
  let t =
    { sim;
      seed;
      mode = redundancy;
      ec;
      width;
      quarantine_after;
      probe_period;
      repair_period;
      repair_budget;
      link_retries;
      retx_timeout;
      nodes = Array.of_list all;
      pages = Hashtbl.create 256;
      s_stores = 0;
      s_acks = 0;
      s_replica_skips = 0;
      s_replica_timeouts = 0;
      s_remote_fulls = 0;
      s_lost_primaries = 0;
      s_failovers = 0;
      s_rebuilds = 0;
      s_disk_fallbacks = 0;
      s_secondary_rebuilds = 0;
      s_lost_shards = 0;
      s_degraded_reads = 0;
      s_reconstructions = 0;
      s_corrupt_shards = 0;
      s_migrations = 0;
      s_node_joins = 0;
      s_node_retires = 0;
      s_retransmits = 0;
      s_quarantines = 0;
      s_readmissions = 0;
      s_probes = 0;
      s_probe_failures = 0;
      s_wipes_applied = 0;
      s_repair_rounds = 0 }
  in
  if repair then
    ignore
      (Proc.spawn ~name:"fleet.repair" sim (fun () ->
           let rec loop () =
             Proc.sleep t.repair_period;
             repair_round t;
             loop ()
           in
           loop ()));
  t

let admit_clients t ~name ~period ~slice ?extra ?queue_depth ?laxity () =
  let admitted = ref [] in
  let rec go i =
    if i = Array.length t.nodes then
      Ok (Array.of_list (List.rev !admitted))
    else
      let nd = t.nodes.(i) in
      match
        Usnet.Link.admit nd.nd_link
          ~name:(name ^ "@" ^ nd.nd_name)
          ~period ~slice ?extra ?queue_depth ?laxity ()
      with
      | Ok c ->
          admitted := c :: !admitted;
          go (i + 1)
      | Error e ->
          List.iteri
            (fun j c -> Usnet.Link.retire t.nodes.(i - 1 - j).nd_link c)
            !admitted;
          Error e
  in
  go 0

let attach ?(mode = Store.Write_through) ?(cache_pages = 32)
    ?(label = "fleet") t ~clients ~swap () =
  if cache_pages < 1 then invalid_arg "Fleet.attach: cache_pages must be >= 1";
  if Array.length clients <> Array.length t.nodes then
    invalid_arg "Fleet.attach: need one admitted client per node";
  let cap = Usbs.Sfs.page_capacity swap in
  { fl = t;
    mode;
    label;
    swap;
    clients;
    owner = Usbs.Sfs.swap_name swap;
    cache_cap = cache_pages;
    lru = Ilist.create ();
    lnodes = Hashtbl.create 64;
    evicting = Hashtbl.create 8;
    disk_valid = Array.make (max 1 cap) true;
    dead = Array.make (max 1 cap) false;
    sx_cache_hits = 0;
    sx_fleet_hits = 0;
    sx_fleet_misses = 0;
    sx_promotes = 0;
    sx_demotes = 0;
    sx_write_fallbacks = 0;
    sx_clean_skips = 0;
    sx_lost_slots = 0 }

(* ------------------------------------------------------------------ *)
(* Local RAM tier (LRU over slot indices, as in Store)                 *)

let cached st s = Hashtbl.mem st.lnodes s

let touch st s =
  match Hashtbl.find_opt st.lnodes s with
  | Some n -> Ilist.move_back st.lru n
  | None -> ()

let drop_cache st s =
  match Hashtbl.find_opt st.lnodes s with
  | Some n ->
      Ilist.remove st.lru n;
      Hashtbl.remove st.lnodes s
  | None -> ()

let tracked st s = Hashtbl.mem st.fl.pages (st.owner, s)

(* Fresh contents for a slot: every stored entry is stale. The drops
   are metadata at the nodes; the placement-book entry goes with
   them, so the fleet never serves the old bytes. *)
let drop_fleet st s =
  match Hashtbl.find_opt st.fl.pages (st.owner, s) with
  | Some reps ->
      Array.iteri
        (fun p i ->
          Remote_node.drop st.fl.nodes.(i).nd_remote
            ~shard:(shard_of st.fl p) ~owner:st.owner ~slot:s)
        reps;
      Hashtbl.remove st.fl.pages (st.owner, s)
  | None -> ()

(* Same duty as Store.disk_write_slot: a dirty page no node accepted
   lands on the disk; if the disk eats the write too the fleet held
   the last copy and the slot is dead. *)
let disk_write_slot st s =
  match Usbs.Sfs.write_page st.swap ~page_index:s with
  | Ok () -> st.disk_valid.(s) <- true
  | Error (`Lost_pages _) ->
      Inject.note_killed "fleet.demote";
      st.dead.(s) <- true;
      st.sx_lost_slots <- st.sx_lost_slots + 1
  | Error (`Retired | `Crashed) -> ()

(* Push one evicted slot to its stripe. Inclusive with the fleet: a
   slot already in the placement book just leaves the cache.
   Quarantined nodes are skipped (repair rebuilds their entries); the
   eviction succeeds if enough entries were acked to recover the page
   — one copy, or k shards. An under-placed erasure stripe is
   useless, so its acked shards are taken back before falling to the
   disk floor (no leaked node entries). *)
let demote st s =
  if (not (tracked st s)) && not st.dead.(s) then begin
    let t = st.fl in
    poll_faults t;
    let dirty = not st.disk_valid.(s) in
    let reps = placement t ~owner:st.owner ~slot:s in
    let acked = Array.make (Array.length reps) false in
    let placed = ref 0 in
    let push_one p =
      let i = reps.(p) in
      let nd = t.nodes.(i) in
      if nd.nd_quarantined then t.s_replica_skips <- t.s_replica_skips + 1
      else if not (Remote_node.has_room nd.nd_remote) then begin
        (* known-full before any byte moves, as in Store *)
        t.s_remote_fulls <- t.s_remote_fulls + 1;
        metric "remote_full"
      end
      else
        match
          push_page t nd st.clients.(i) ~retries:t.link_retries
            ~shard:(shard_of t p) ~owner:st.owner ~slot:s
        with
        | `Acked ->
            incr placed;
            acked.(p) <- true;
            t.s_stores <- t.s_stores + 1;
            metric "store"
        | `Full ->
            t.s_remote_fulls <- t.s_remote_fulls + 1;
            metric "remote_full"
        | `Timeout -> t.s_replica_timeouts <- t.s_replica_timeouts + 1
    in
    in_parallel t (List.init (Array.length reps) (fun p () -> push_one p));
    if !placed >= min_placed t then begin
      Hashtbl.replace t.pages (st.owner, s) reps;
      st.sx_demotes <- st.sx_demotes + 1
    end
    else begin
      Array.iteri
        (fun p i ->
          if acked.(p) then
            Remote_node.drop t.nodes.(i).nd_remote ~shard:(shard_of t p)
              ~owner:st.owner ~slot:s)
        reps;
      if dirty then begin
        st.sx_write_fallbacks <- st.sx_write_fallbacks + 1;
        disk_write_slot st s
      end
      else st.sx_clean_skips <- st.sx_clean_skips + 1
    end
  end

let rec shrink st =
  if Hashtbl.length st.lnodes > st.cache_cap then begin
    let victim =
      Ilist.fold
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> if Hashtbl.mem st.evicting s then None else Some s)
        None st.lru
    in
    match victim with
    | None -> ()
    | Some s ->
        Hashtbl.replace st.evicting s ();
        demote st s;
        Hashtbl.remove st.evicting s;
        drop_cache st s;
        shrink st
  end

let insert_cache st s =
  if not st.dead.(s) then begin
    if cached st s then touch st s
    else begin
      let n = Ilist.make_node s in
      Hashtbl.replace st.lnodes s n;
      Ilist.push_back st.lru n;
      shrink st
    end
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

(* Serve one tracked slot from a replicated stripe: primary first,
   then the surviving copies in placement order. Exactly one of
   failover/disk-fallback answers a lost primary here (rebuilds are
   the repair process's entry). *)
let fetch_replicated st s reps =
  let t = st.fl in
  let try_node p =
    let i = reps.(p) in
    let nd = t.nodes.(i) in
    if nd.nd_quarantined then `Skip
    else
      match
        fetch_shard t nd st.clients.(i) ~retries:t.link_retries ~shard:0
          ~owner:st.owner ~slot:s
      with
      | `Ok ->
          nd.nd_serves <- nd.nd_serves + 1;
          `Ok
      | (`Stale | `Timeout | `Corrupt) as e -> e
  in
  match try_node 0 with
  | `Ok -> `Served
  | `Skip | `Stale | `Timeout | `Corrupt ->
      t.s_lost_primaries <- t.s_lost_primaries + 1;
      metric "lost_primary";
      let rec failover p =
        if p >= Array.length reps then `All_lost 1
        else
          match try_node p with
          | `Ok ->
              t.s_failovers <- t.s_failovers + 1;
              t.nodes.(reps.(p)).nd_failovers <-
                t.nodes.(reps.(p)).nd_failovers + 1;
              metric "failover";
              `Served
          | `Skip | `Stale | `Timeout | `Corrupt -> failover (p + 1)
      in
      failover 1

(* Serve one tracked slot from an erasure stripe: walk the positions
   in shard order (data first — the systematic fast path needs no
   decode) until k shards are in hand. Every position found
   unavailable on the way (quarantined, stale, timed out, corrupt)
   is one lost-shard observation; a read that still gathers k is a
   {e degraded read} — answered from remote memory by
   reconstruction, never the disk floor — and books each observed
   loss as a reconstruction. A read that cannot gather k returns the
   observation count for the disk-fallback side of the ledger. *)
let fetch_erasure st s reps c =
  let t = st.fl in
  let k = Ec.k c in
  let t0 = Time.to_us (Sim.now t.sim) in
  let got = ref 0 and losses = ref 0 in
  let fetch_one p =
    let i = reps.(p) in
    let nd = t.nodes.(i) in
    if nd.nd_quarantined then begin
      incr losses;
      metric "lost_shard"
    end
    else
      match
        fetch_shard t nd st.clients.(i) ~retries:t.link_retries ~shard:p
          ~owner:st.owner ~slot:s
      with
      | `Ok ->
          incr got;
          nd.nd_serves <- nd.nd_serves + 1
      | `Stale | `Timeout | `Corrupt ->
          incr losses;
          metric "lost_shard"
  in
  (* Gather in parallel rounds: the k lowest live positions first
     (data shards — the systematic fast path needs no decode), then
     widen by exactly as many legs as failed. Healthy stripes pay one
     parallel round; a stripe missing j <= m shards pays one short
     second round for the parity it now needs. *)
  let next = ref 0 in
  while !got < k && !next < t.width do
    let batch = min (k - !got) (t.width - !next) in
    let first = !next in
    next := first + batch;
    in_parallel t (List.init batch (fun j () -> fetch_one (first + j)))
  done;
  t.s_lost_shards <- t.s_lost_shards + !losses;
  if !got >= k then begin
    if !losses > 0 then begin
      (* the GF(256) decode itself is CPU noise next to the wire *)
      t.s_degraded_reads <- t.s_degraded_reads + 1;
      t.s_reconstructions <- t.s_reconstructions + !losses;
      metric "degraded_read";
      if !Obs.enabled then
        Obs.Metrics.observe ~label:st.label "fleet.degraded_us"
          (Time.to_us (Sim.now t.sim) -. t0)
    end;
    `Served
  end
  else `All_lost !losses

let fetch_fleet st s =
  let t = st.fl in
  poll_faults t;
  let reps = Hashtbl.find t.pages (st.owner, s) in
  match t.ec with
  | None -> fetch_replicated st s reps
  | Some c -> fetch_erasure st s reps c

let read_pages st ~page_index ~npages =
  let lost = ref [] in
  let fatal = ref None in
  let run_start = ref 0 and run_len = ref 0 in
  (* coalesce consecutive disk-served slots into one SFS transaction *)
  let flush_run () =
    if !run_len > 0 then begin
      (match
         Usbs.Sfs.read_pages st.swap ~page_index:!run_start ~npages:!run_len
       with
      | Ok () ->
          for s = !run_start to !run_start + !run_len - 1 do
            insert_cache st s
          done
      | Error (`Lost_pages l) ->
          for s = !run_start to !run_start + !run_len - 1 do
            if List.mem s l then lost := s :: !lost else insert_cache st s
          done
      | Error ((`Retired | `Crashed) as e) -> fatal := Some e);
      run_len := 0
    end
  in
  let from_disk s =
    if !run_len = 0 then begin
      run_start := s;
      run_len := 1
    end
    else run_len := !run_len + 1
  in
  let i = ref page_index in
  while !fatal = None && !i < page_index + npages do
    let s = !i in
    if st.dead.(s) then begin
      flush_run ();
      lost := s :: !lost
    end
    else if cached st s then begin
      flush_run ();
      touch st s;
      st.sx_cache_hits <- st.sx_cache_hits + 1;
      smetric st "cache_hit"
    end
    else if tracked st s then begin
      flush_run ();
      (* remote faults feed the repair queue's hot-first ordering *)
      if !Obs.enabled then Obs.Heat.note ~owner:st.owner ~slot:s;
      match fetch_fleet st s with
      | `Served ->
          st.sx_fleet_hits <- st.sx_fleet_hits + 1;
          smetric st "hit";
          st.sx_promotes <- st.sx_promotes + 1;
          (* inclusive: the nodes keep their entries *)
          insert_cache st s
      | `All_lost n ->
          st.fl.s_disk_fallbacks <- st.fl.s_disk_fallbacks + n;
          smetric st "disk_fallback";
          if st.disk_valid.(s) then begin
            from_disk s;
            flush_run ()
          end
          else begin
            st.sx_lost_slots <- st.sx_lost_slots + 1;
            st.dead.(s) <- true;
            lost := s :: !lost
          end
    end
    else begin
      st.sx_fleet_misses <- st.sx_fleet_misses + 1;
      from_disk s
    end;
    incr i
  done;
  flush_run ();
  match !fatal with
  | Some (`Retired | `Crashed) as e -> Error (Option.get e)
  | None ->
      if !lost = [] then Ok () else Error (`Lost_pages (List.rev !lost))

(* ------------------------------------------------------------------ *)
(* Writes (mirrors Store: disk is the durability floor)                *)

let overwrite st s ~disk =
  st.dead.(s) <- false;
  drop_fleet st s;
  st.disk_valid.(s) <- disk;
  insert_cache st s

let write_range_through st ~page_index ~npages =
  match Usbs.Sfs.write_pages st.swap ~page_index ~npages with
  | Ok () ->
      for s = page_index to page_index + npages - 1 do
        overwrite st s ~disk:true
      done;
      Ok ()
  | Error (`Lost_pages l) as e ->
      for s = page_index to page_index + npages - 1 do
        if List.mem s l then begin
          drop_cache st s;
          drop_fleet st s;
          st.dead.(s) <- true
        end
        else overwrite st s ~disk:true
      done;
      e
  | Error (`Retired | `Crashed) as e -> e

let write_pages st ~page_index ~npages =
  match st.mode with
  | Store.Write_through -> write_range_through st ~page_index ~npages
  | Store.Write_back ->
      for s = page_index to page_index + npages - 1 do
        overwrite st s ~disk:false
      done;
      Ok ()

let write_page st ~page_index = write_pages st ~page_index ~npages:1

let write_pages_commit st ~page_index ~npages ~pages ~retire =
  match
    Usbs.Sfs.write_pages_commit st.swap ~page_index ~npages ~pages ~retire
  with
  | Ok () ->
      for s = page_index to page_index + npages - 1 do
        overwrite st s ~disk:true
      done;
      Ok ()
  | Error (`Lost_pages l) as e ->
      for s = page_index to page_index + npages - 1 do
        if List.mem s l then begin
          drop_cache st s;
          drop_fleet st s;
          st.dead.(s) <- true
        end
        else overwrite st s ~disk:true
      done;
      e
  | Error (`Retired | `Crashed) as e -> e

let backing st =
  { Backing.label = st.label;
    page_capacity = (fun () -> Usbs.Sfs.page_capacity st.swap);
    journaled = (fun () -> Usbs.Sfs.swap_journaled st.swap);
    read_pages =
      (fun ~page_index ~npages -> read_pages st ~page_index ~npages);
    write_page = (fun ~page_index -> write_page st ~page_index);
    write_pages =
      (fun ~page_index ~npages -> write_pages st ~page_index ~npages);
    write_pages_commit =
      (fun ~page_index ~npages ~pages ~retire ->
        write_pages_commit st ~page_index ~npages ~pages ~retire);
    slot_committed = (fun slot -> Usbs.Sfs.slot_committed st.swap slot);
    extent =
      (fun () ->
        (Usbs.Sfs.extent_start st.swap, Usbs.Sfs.extent_blocks st.swap)) }

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let stats t =
  { stores = t.s_stores;
    acks = t.s_acks;
    replica_skips = t.s_replica_skips;
    replica_timeouts = t.s_replica_timeouts;
    remote_fulls = t.s_remote_fulls;
    lost_primaries = t.s_lost_primaries;
    failovers = t.s_failovers;
    rebuilds = t.s_rebuilds;
    disk_fallbacks = t.s_disk_fallbacks;
    secondary_rebuilds = t.s_secondary_rebuilds;
    lost_shards = t.s_lost_shards;
    degraded_reads = t.s_degraded_reads;
    reconstructions = t.s_reconstructions;
    corrupt_shards = t.s_corrupt_shards;
    migrations = t.s_migrations;
    node_joins = t.s_node_joins;
    node_retires = t.s_node_retires;
    retransmits = t.s_retransmits;
    quarantines = t.s_quarantines;
    readmissions = t.s_readmissions;
    probes = t.s_probes;
    probe_failures = t.s_probe_failures;
    wipes_applied = t.s_wipes_applied;
    repair_rounds = t.s_repair_rounds }

let health t =
  Array.to_list
    (Array.map
       (fun nd ->
         { nh_name = nd.nd_name;
           nh_member = nd.nd_member;
           nh_used = Remote_node.used_pages nd.nd_remote;
           nh_capacity = Remote_node.capacity nd.nd_remote;
           nh_quarantined = nd.nd_quarantined;
           nh_streak = nd.nd_streak;
           nh_quarantines = nd.nd_quarantines;
           nh_readmissions = nd.nd_readmissions;
           nh_stores = nd.nd_stores;
           nh_serves = nd.nd_serves;
           nh_failovers = nd.nd_failovers })
       t.nodes)

let store_stats st =
  { st_cache_hits = st.sx_cache_hits;
    st_fleet_hits = st.sx_fleet_hits;
    st_fleet_misses = st.sx_fleet_misses;
    st_promotes = st.sx_promotes;
    st_demotes = st.sx_demotes;
    st_write_fallbacks = st.sx_write_fallbacks;
    st_clean_skips = st.sx_clean_skips;
    st_lost_slots = st.sx_lost_slots }

(* Bytes held across the fleet relative to the pages tracked: an
   entry is a whole page (replicated) or 1/k of one (erasure), so
   intact R = 2 measures 2.0x and intact (4, 2) measures 1.5x —
   the storage dividend the erasure experiment asserts. *)
let storage_overhead t =
  let tracked = Hashtbl.length t.pages in
  if tracked = 0 then 0.0
  else
    let entries =
      Array.fold_left
        (fun a nd -> a + Remote_node.used_pages nd.nd_remote)
        0 t.nodes
    in
    let frac =
      match t.ec with
      | None -> 1.0
      | Some c -> 1.0 /. float_of_int (Ec.k c)
    in
    float_of_int entries *. frac /. float_of_int tracked

let books_balanced t =
  t.s_stores = t.s_acks
  &&
  match t.ec with
  | None ->
      t.s_lost_primaries = t.s_failovers + t.s_rebuilds + t.s_disk_fallbacks
  | Some _ ->
      t.s_lost_shards
      = t.s_reconstructions + t.s_rebuilds + t.s_disk_fallbacks

(* --- backing-axis registration --------------------------------------- *)

type fleet_cap = {
  fc_fleet : t;
  fc_clients : Usnet.Link.client array;
  fc_on_store : store -> unit;
}

type Backing.cap += Fleet_tier of fleet_cap

let () =
  Registry.register_exn Backing.axis
    (Registry.manifest ~name:"fleet"
       ~doc:
         "replicated / erasure-coded remote-memory fleet over the disk \
          (Tier.Fleet)"
       ~params:
         [ { Registry.p_name = "cache-pages";
             p_doc = "local RAM cache size, pages";
             p_kind = Registry.Int 32 };
           { Registry.p_name = "label";
             p_doc = "store label for metrics and driver names";
             p_kind = Registry.String (Some "fleet") } ]
       ~default:"fleet:cache-pages=32" ())
    (fun a ->
      match Registry.Spec.int_param a "cache-pages" ~default:32 with
      | Error e -> Error e
      | Ok cache_pages ->
          let label = Registry.Spec.string_param a "label" ~default:"fleet" in
          Ok
            (fun ctx swap ->
              match
                List.find_map
                  (function Fleet_tier c -> Some c | _ -> None)
                  ctx
              with
              | None ->
                  Error "fleet backing needs a Tier.Fleet.Fleet_tier capability"
              | Some c ->
                  let s =
                    attach ~cache_pages ~label c.fc_fleet
                      ~clients:c.fc_clients ~swap ()
                  in
                  c.fc_on_store s;
                  Ok (backing s)))
