(** A replicated remote memory tier: N nodes, R copies, no single
    point of failure.

    PR 6's {!Store} pages to {e one} {!Remote_node}; one
    [Remote_node.wipe] and every tiered domain eats the ~130× disk
    penalty. A fleet spreads the same traffic over several nodes:
    each demoted page is written to [replicas] nodes chosen by a
    seeded rendezvous hash (deterministic — same seed, same replica
    sets), reads try the primary and fail over to the surviving
    replicas, and only when every copy is gone does a fault fall back
    to the disk durability floor.

    {b Health.} Every node is reached over its own {!Usnet.Link};
    packets to a crashed or partitioned node (per
    {!Inject.node_reachable}) are never acked, so the sender
    retransmits on the deterministic {!Store.backoff} ladder and
    eventually times out. [quarantine_after] consecutive timeouts
    quarantine the node: it stops being asked for pages, and a
    background process probes it each [probe_period], re-admitting it
    when a probe is answered (a healed partition) — a crashed node
    just stays quarantined.

    {b Repair.} The same background process re-replicates: each
    [repair_period] it scans the placement book for copies a live
    node should hold but does not (wiped, or newly re-admitted after
    losing its RAM) and rebuilds up to [repair_budget] copies per
    round from surviving replicas, over the fleet's own repair link
    clients so repair traffic cannot eat the domains' guarantees.

    {b Books.} Double-entry, extending the PR 6 convention:
    - [stores = acks] — every replica copy the placement book records
      was individually acknowledged by its node;
    - [lost_primaries = failovers + rebuilds + disk_fallbacks] —
      every observation of a missing/unreachable primary copy is
      answered exactly once: a surviving replica served the read, the
      repair process rebuilt the primary copy, or the read fell back
      to the disk.

    Charging is unchanged from {!Store}: every fragment a domain
    sends or receives burns that domain's own link-client slice, so a
    thrashing tiered domain still cannot starve its neighbours. *)

open Engine

type t
(** The fleet: nodes, placement book, health state, repair process. *)

type store
(** One domain's view of the fleet — LRU RAM cache on top, the
    replicated node set below, the domain's swapfile as durability
    floor. Obtained from {!attach}, consumed via {!backing}. *)

type stats = {
  stores : int;  (** replica copies recorded in the placement book *)
  acks : int;  (** node acknowledgements backing those copies *)
  replica_skips : int;  (** writes not attempted (node quarantined) *)
  replica_timeouts : int;  (** writes abandoned after the last retry *)
  remote_fulls : int;  (** writes refused by a full node *)
  lost_primaries : int;  (** reads/repairs that found the primary gone *)
  failovers : int;  (** ... answered by a surviving replica *)
  rebuilds : int;  (** ... answered by rebuilding the primary copy *)
  disk_fallbacks : int;  (** ... answered by the disk floor *)
  secondary_rebuilds : int;
      (** non-primary copies rebuilt (outside the primary equation) *)
  retransmits : int;  (** fragments retried on the backoff ladder *)
  quarantines : int;  (** nodes quarantined (streak of timeouts) *)
  readmissions : int;  (** quarantined nodes probed back in *)
  probes : int;
  probe_failures : int;
  wipes_applied : int;  (** {!Inject.node_wipe_due} wipes honoured *)
  repair_rounds : int;
}

type node_health = {
  nh_name : string;
  nh_used : int;
  nh_capacity : int;
  nh_quarantined : bool;
  nh_streak : int;  (** consecutive timeouts right now *)
  nh_quarantines : int;
  nh_readmissions : int;
}

type store_stats = {
  st_cache_hits : int;
  st_fleet_hits : int;  (** reads served by some replica node *)
  st_fleet_misses : int;  (** reads of never-placed slots (disk) *)
  st_promotes : int;
  st_demotes : int;  (** evictions placed on at least one node *)
  st_write_fallbacks : int;
      (** dirty evictions no node accepted, written to disk instead *)
  st_clean_skips : int;  (** clean evictions no node accepted *)
  st_lost_slots : int;  (** slots dead with no surviving copy anywhere *)
}

val create :
  ?replicas:int ->
  ?quarantine_after:int ->
  ?probe_period:Time.span ->
  ?repair_period:Time.span ->
  ?repair_budget:int ->
  ?link_retries:int ->
  ?retx_timeout:Time.span ->
  ?repair_qos:Time.span * Time.span ->
  ?repair:bool ->
  seed:int ->
  nodes:(string * Remote_node.t * Usnet.Link.t) list ->
  Sim.t ->
  t
(** [create ~seed ~nodes sim] builds a fleet over [nodes] — each a
    [(name, node, link)] triple where [name] must be the link's
    {!Usnet.Link.name} (it keys the {!Inject} node-fault sites).
    Defaults: [replicas = 2] copies per page, [quarantine_after = 3]
    consecutive timeouts, [probe_period = 50ms], [repair_period =
    25ms], [repair_budget = 8] copies rebuilt per round,
    [link_retries = 3], [retx_timeout = 1ms] (the {!Store.backoff}
    base), [repair_qos = (20ms, 2ms)] — the (p, s) guarantee admitted
    on every node link for the fleet's own probe/repair traffic —
    and [repair = true] (spawn the background repair process; tests
    that want to drive rounds by hand pass [false] and call
    {!repair_round}).

    Raises [Invalid_argument] on an empty node list, [replicas < 1]
    or a refused repair-client admission. [replicas] is clamped to
    the fleet size. *)

val admit_clients :
  t ->
  name:string ->
  period:Time.span ->
  slice:Time.span ->
  ?extra:bool ->
  ?queue_depth:int ->
  ?laxity:Time.span ->
  unit ->
  (Usnet.Link.client array, Usnet.Link.admit_error) result
(** Admit one client per node link under the same (p, s, x, l)
    guarantee, in node order — what {!attach} consumes. On a refusal
    the already-admitted clients are retired and the error returned. *)

val attach :
  ?mode:Store.mode ->
  ?cache_pages:int ->
  ?label:string ->
  t ->
  clients:Usnet.Link.client array ->
  swap:Usbs.Sfs.swapfile ->
  unit ->
  store
(** Attach one domain: [clients] must be one admitted client per node
    in node order (see {!admit_clients}); pages are keyed at the
    nodes by the swapfile's name. Defaults mirror {!Store.create}:
    [mode = Write_through], [cache_pages = 32], [label = "fleet"]. *)

val backing : store -> Backing.t
(** The store as a {!Backing.t} — what [Sd_paged.create ?backing] and
    [Workload.Paging_app.start ?backing] take. *)

val placement : t -> owner:string -> slot:int -> int array
(** The replica node indices the rendezvous hash assigns this page,
    primary first — deterministic in [(seed, names, owner, slot)]
    alone, so tests can assert same seed → same replica sets. *)

val node_names : t -> string array

val repair_round : t -> unit
(** One synchronous probe/repair round — what the background process
    runs each [repair_period]. Exposed for tests ([repair = false]). *)

val stats : t -> stats
val health : t -> node_health list
val store_stats : store -> store_stats

val books_balanced : t -> bool
(** [stores = acks] and
    [lost_primaries = failovers + rebuilds + disk_fallbacks]. *)
