(** A redundant remote memory tier: N nodes, replicated or
    erasure-coded stripes, no single point of failure.

    PR 6's {!Store} pages to {e one} {!Remote_node}; one
    [Remote_node.wipe] and every tiered domain eats the ~130× disk
    penalty. A fleet spreads the same traffic over several nodes
    under a per-fleet {!redundancy} policy:

    - [Replicated r]: each demoted page is written whole to [r]
      nodes chosen by a seeded rendezvous hash; reads try the primary
      and fail over to the surviving copies.
    - [Erasure {k; m}]: each demoted page is split by the {!Ec}
      Reed–Solomon coder into [k] data + [m] parity shards placed on
      [k + m] distinct nodes — [1 + m/k] times the page's bytes
      instead of [r] times. Stripe legs travel {e in parallel} (one
      transfer process per node, demotes and reads both), so a stripe
      costs its slowest leg, not the sum of [k + m] serial transfers.
      Reads gather the first [k] positions of the stripe in one
      parallel round (the systematic fast path needs no decode) and,
      per shard lost, widen the round into the parity — a degraded
      read {e reconstructs} from any [k] shards, served from remote
      memory, never the disk floor.

    Only when a page is unrecoverable remotely (every copy gone, or
    more than [m] shards lost) does a fault fall back to the disk
    durability floor.

    {b Health.} Every node is reached over its own {!Usnet.Link};
    packets to a crashed or partitioned node (per
    {!Inject.node_reachable}) are never acked, so the sender
    retransmits on the deterministic {!Store.backoff} ladder and
    eventually times out. [quarantine_after] consecutive timeouts
    quarantine the node: it stops being asked for pages, and a
    background process probes it each [probe_period], re-admitting it
    when a probe is answered (a healed partition) — a crashed node
    just stays quarantined. A served entry that fails its checksum
    ({!Inject.shard_corrupt}) is treated exactly like a lost one.

    {b Repair.} The same background process restores redundancy: each
    [repair_period] it walks the placement book {e hottest page
    first} — ordered by the per-page fault counts {!Obs.Heat}
    accumulates, so the pages domains are actually faulting on regain
    full redundancy before cold ones — and rebuilds up to
    [repair_budget] entries per round over the fleet's own repair
    link clients. A missing replicated copy is refetched from a
    survivor; a missing erasure shard is reconstructed from any [k]
    live shards ([k] fetches + one push, the real price of parity
    repair) unless its old holder still serves it, in which case one
    fetch moves it.

    {b Membership.} Nodes can join and retire at run time:
    {!add_node} admits a standby node (declared at {!create} so its
    link clients exist from the start) into the placement ring, and
    {!retire_node} removes one — both also drivable from the chaos
    plan via {!Inject.node_join_due}/{!Inject.node_retire_due}.
    Rebalancing is rendezvous re-ranking: only pages whose top-[width]
    set involves the changed node move, and the moves are budgeted
    through the same repair loop (a {e migration} — the entry lived,
    it just moved — never enters the loss ledger). A retiring node
    keeps answering reads while it drains.

    {b Books.} Double-entry, mode-aware:
    - both modes: [stores = acks] — every entry the placement book
      records was individually acknowledged by its node;
    - replicated:
      [lost_primaries = failovers + rebuilds + disk_fallbacks];
    - erasure:
      [lost_shards = reconstructions + rebuilds + disk_fallbacks] —
      every lost-shard observation is answered exactly once: a
      degraded read reconstructed over it, the repair process rebuilt
      it, or the read fell back to the disk (fallback reads book one
      answer per shard they observed lost).

    Charging is unchanged from {!Store}: every fragment a domain
    sends or receives burns that domain's own link-client slice, so a
    thrashing tiered domain still cannot starve its neighbours. *)

open Engine

type redundancy =
  | Replicated of int  (** [r] whole-page copies on [r] nodes *)
  | Erasure of { k : int; m : int }
      (** [k] data + [m] parity shards on [k + m] nodes; any [m]
          losses survived at [1 + m/k] times the storage *)

type t
(** The fleet: nodes, placement book, health state, repair process. *)

type store
(** One domain's view of the fleet — LRU RAM cache on top, the
    redundant node set below, the domain's swapfile as durability
    floor. Obtained from {!attach}, consumed via {!backing}. *)

type stats = {
  stores : int;  (** entries recorded in the placement book *)
  acks : int;  (** node acknowledgements backing those entries *)
  replica_skips : int;  (** writes not attempted (node quarantined) *)
  replica_timeouts : int;  (** writes abandoned after the last retry *)
  remote_fulls : int;  (** writes refused by a full node *)
  lost_primaries : int;
      (** replicated: reads/repairs that found the primary gone *)
  failovers : int;  (** ... answered by a surviving copy *)
  rebuilds : int;
      (** ... answered by rebuilding the copy (replicated primaries)
          or the shard (erasure, any position) *)
  disk_fallbacks : int;
      (** ... answered by the disk floor (erasure: one per shard the
          falling-back read observed lost) *)
  secondary_rebuilds : int;
      (** replicated non-primary copies rebuilt (outside the primary
          equation) *)
  lost_shards : int;
      (** erasure: shard-loss observations (reads and repair) *)
  degraded_reads : int;
      (** erasure reads that needed parity and a decode *)
  reconstructions : int;
      (** lost-shard observations answered by a degraded read *)
  corrupt_shards : int;
      (** entries served but failing their checksum (both modes) *)
  migrations : int;
      (** entries moved by rebalancing (membership changes) — the
          entry lived, so no loss ledger entry *)
  node_joins : int;  (** standby nodes admitted into membership *)
  node_retires : int;  (** members retired out of the ring *)
  retransmits : int;  (** fragments retried on the backoff ladder *)
  quarantines : int;  (** nodes quarantined (streak of timeouts) *)
  readmissions : int;  (** quarantined nodes probed back in *)
  probes : int;
  probe_failures : int;
  wipes_applied : int;  (** {!Inject.node_wipe_due} wipes honoured *)
  repair_rounds : int;
}

type node_health = {
  nh_name : string;
  nh_member : bool;  (** in the placement ring right now *)
  nh_used : int;  (** entries held (pages, or shards) *)
  nh_capacity : int;
  nh_quarantined : bool;
  nh_streak : int;  (** consecutive timeouts right now *)
  nh_quarantines : int;
  nh_readmissions : int;
  nh_stores : int;  (** entries this node acked over its lifetime *)
  nh_serves : int;  (** reads this node answered *)
  nh_failovers : int;  (** reads it answered as a replicated failover *)
}

type store_stats = {
  st_cache_hits : int;
  st_fleet_hits : int;  (** reads served by the fleet (incl. degraded) *)
  st_fleet_misses : int;  (** reads of never-placed slots (disk) *)
  st_promotes : int;
  st_demotes : int;  (** evictions placed on enough nodes to recover *)
  st_write_fallbacks : int;
      (** dirty evictions the fleet could not hold, written to disk *)
  st_clean_skips : int;  (** clean evictions the fleet could not hold *)
  st_lost_slots : int;  (** slots dead with no surviving copy anywhere *)
}

val create :
  ?redundancy:redundancy ->
  ?standby:(string * Remote_node.t * Usnet.Link.t) list ->
  ?quarantine_after:int ->
  ?probe_period:Time.span ->
  ?repair_period:Time.span ->
  ?repair_budget:int ->
  ?link_retries:int ->
  ?retx_timeout:Time.span ->
  ?repair_qos:Time.span * Time.span ->
  ?repair:bool ->
  seed:int ->
  nodes:(string * Remote_node.t * Usnet.Link.t) list ->
  Sim.t ->
  t
(** [create ~seed ~nodes sim] builds a fleet over [nodes] — each a
    [(name, node, link)] triple where [name] must be the link's
    {!Usnet.Link.name} (it keys the {!Inject} node-fault sites).
    [standby] nodes are fully wired (repair client, per-store
    clients) but start outside the placement ring, waiting for
    {!add_node} or a planned {!Inject.node_join_due}.

    Defaults: [redundancy = Replicated 2], [quarantine_after = 3]
    consecutive timeouts, [probe_period = 50ms], [repair_period =
    25ms], [repair_budget = 8] entries rebuilt per round,
    [link_retries = 3], [retx_timeout = 1ms] (the {!Store.backoff}
    base), [repair_qos = (20ms, 2ms)] — the (p, s) guarantee admitted
    on every node link for the fleet's own probe/repair traffic —
    and [repair = true] (spawn the background repair process; tests
    that want to drive rounds by hand pass [false] and call
    {!repair_round}).

    Raises [Invalid_argument] on an empty node list, a replica count
    [< 1], an invalid [(k, m)] (see {!Ec.make}), [k + m] exceeding
    the member count, or a refused repair-client admission. A
    replica count is clamped to the member count; the stripe width
    is then fixed for the fleet's lifetime (membership changes swap
    nodes in and out, never resize stripes). *)

val admit_clients :
  t ->
  name:string ->
  period:Time.span ->
  slice:Time.span ->
  ?extra:bool ->
  ?queue_depth:int ->
  ?laxity:Time.span ->
  unit ->
  (Usnet.Link.client array, Usnet.Link.admit_error) result
(** Admit one client per node link (members and standby — a later
    join needs no new admission) under the same (p, s, x, l)
    guarantee, in node order — what {!attach} consumes. On a refusal
    the already-admitted clients are retired and the error returned. *)

val attach :
  ?mode:Store.mode ->
  ?cache_pages:int ->
  ?label:string ->
  t ->
  clients:Usnet.Link.client array ->
  swap:Usbs.Sfs.swapfile ->
  unit ->
  store
(** Attach one domain: [clients] must be one admitted client per node
    in node order (see {!admit_clients}); pages are keyed at the
    nodes by the swapfile's name. Defaults mirror {!Store.create}:
    [mode = Write_through], [cache_pages = 32], [label = "fleet"]. *)

val backing : store -> Backing.t
(** The store as a {!Backing.t} — what [Sd_paged.create ?backing] and
    [Workload.Paging_app.start ?backing] take. *)

type fleet_cap = {
  fc_fleet : t;
  fc_clients : Usnet.Link.client array;  (** from {!admit_clients} *)
  fc_on_store : store -> unit;
      (** receives the attached store (for [stats] at teardown) *)
}

type Backing.cap += Fleet_tier of fleet_cap
(** The live capability the registered ["fleet"] backing consumes:
    [Backing.resolve "fleet:cache-pages=24"] yields a factory that,
    given a ctx holding one of these and a swapfile, {!attach}es the
    domain to the fleet and returns the store's {!backing}. *)

val placement : t -> owner:string -> slot:int -> int array
(** The node indices the rendezvous hash assigns this page's stripe,
    primary / shard 0 first — deterministic in [(seed, member names,
    owner, slot)] alone, so tests can assert same seed → same
    placement, and a membership change re-ranks with minimal
    movement. *)

val node_names : t -> string array
(** All nodes, members and standby, in node order. *)

val member_names : t -> string array
(** The nodes currently in the placement ring. *)

val redundancy : t -> redundancy

val stripe_width : t -> int
(** Entries placed per page: the (possibly clamped) replica count,
    or [k + m]. *)

val add_node : t -> name:string -> unit
(** Admit a standby node into the placement ring; the repair loop
    migrates entries onto it (rendezvous re-ranking, budgeted).
    Raises [Invalid_argument] on an unknown name or a current
    member. *)

val retire_node : t -> name:string -> unit
(** Remove a member from the placement ring; it keeps answering
    reads while the repair loop drains its entries to the re-ranked
    placement. Raises [Invalid_argument] on an unknown name, a
    non-member, or if the remaining members would not fit a stripe. *)

val repair_round : t -> unit
(** One synchronous fault-poll/probe/repair round — what the
    background process runs each [repair_period]. Exposed for tests
    ([repair = false]). *)

val stats : t -> stats
val health : t -> node_health list
val store_stats : store -> store_stats

val storage_overhead : t -> float
(** Bytes held across the fleet's nodes relative to the pages
    tracked in the placement book: a replicated entry is one page, a
    shard [1/k] of one. Intact [Replicated 2] measures 2.0; intact
    [Erasure {k = 4; m = 2}] measures 1.5. [0.0] when nothing is
    tracked. *)

val books_balanced : t -> bool
(** [stores = acks], and the mode's loss ledger:
    [lost_primaries = failovers + rebuilds + disk_fallbacks]
    (replicated) or
    [lost_shards = reconstructions + rebuilds + disk_fallbacks]
    (erasure). *)
