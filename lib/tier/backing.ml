type io_error = [ `Lost_pages of int list | `Retired | `Crashed ]

type t = {
  label : string;
  page_capacity : unit -> int;
  journaled : unit -> bool;
  read_pages : page_index:int -> npages:int -> (unit, io_error) result;
  write_page : page_index:int -> (unit, io_error) result;
  write_pages : page_index:int -> npages:int -> (unit, io_error) result;
  write_pages_commit :
    page_index:int ->
    npages:int ->
    pages:(int * int) list ->
    retire:(int * int) list ->
    (unit, io_error) result;
  slot_committed : int -> bool;
  extent : unit -> int * int;
}

let of_sfs swap =
  { label = "sfs";
    page_capacity = (fun () -> Usbs.Sfs.page_capacity swap);
    journaled = (fun () -> Usbs.Sfs.swap_journaled swap);
    read_pages =
      (fun ~page_index ~npages ->
        Usbs.Sfs.read_pages swap ~page_index ~npages);
    write_page = (fun ~page_index -> Usbs.Sfs.write_page swap ~page_index);
    write_pages =
      (fun ~page_index ~npages ->
        Usbs.Sfs.write_pages swap ~page_index ~npages);
    write_pages_commit =
      (fun ~page_index ~npages ~pages ~retire ->
        Usbs.Sfs.write_pages_commit swap ~page_index ~npages ~pages ~retire);
    slot_committed = (fun slot -> Usbs.Sfs.slot_committed swap slot);
    extent =
      (fun () -> (Usbs.Sfs.extent_start swap, Usbs.Sfs.extent_blocks swap)) }

(* --- the backing hook point ------------------------------------------ *)

type cap = ..
type ctx = cap list
type factory = ctx -> Usbs.Sfs.swapfile -> (t, string) result

let axis : factory Registry.axis =
  Registry.axis ~name:"backing"
    ~doc:
      "backing stores a paged driver writes through (Tier.Backing.t); \
       tiered stacks take their live capabilities from the ctx"

let () =
  Registry.register_exn axis
    (Registry.manifest ~name:"sfs"
       ~doc:"the swapfile's own data path — the seed semantics, bit-for-bit"
       ())
    (fun a ->
      if a.Registry.Spec.args = [] && a.Registry.Spec.params = [] then
        Ok (fun _ctx swap -> Ok (of_sfs swap))
      else Error "sfs takes no parameter")

let resolve s = Registry.resolve axis s
