(** A deterministic model of a remote memory node.

    The far end of the disaggregated-memory tier: a bounded pool of
    page slots keyed by [(owner, slot)], with a fixed per-page service
    latency. The node itself is passive bookkeeping — {!Store} does
    the link transfers and sleeps the service time under the calling
    domain's own guarantees, so the node adds no hidden scheduling and
    two same-seed runs behave identically.

    Capacity is a hard bound: {!store} on a full node returns
    [`Remote_full] and the caller degrades to the disk tier — a full
    remote node never kills anything. *)

open Engine

type t

val create : ?service:Time.span -> capacity_pages:int -> unit -> t
(** [service] (default 25 us) is the node-side latency per page
    looked up or stored — DRAM plus the remote NIC, far below a disk
    transaction. *)

val store : t -> owner:string -> slot:int -> (unit, [ `Remote_full ]) result
(** Idempotent: storing a page the node already holds succeeds
    without consuming a second slot. *)

val holds : t -> owner:string -> slot:int -> bool
val drop : t -> owner:string -> slot:int -> unit

val has_room : t -> bool
val used_pages : t -> int
val capacity : t -> int
val service_time : t -> Time.span

val wipe : t -> unit
(** Forget everything — models the remote node power-cycling; owners'
    [in_remote] hints go stale and their next fetch degrades to disk
    (tests only). *)
