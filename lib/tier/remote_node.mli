(** A deterministic model of a remote memory node.

    The far end of the disaggregated-memory tier: a bounded pool of
    page-or-shard slots keyed by [(owner, slot, shard)], with a fixed
    per-entry service latency. The node itself is passive bookkeeping
    — {!Store} and {!Fleet} do the link transfers and sleep the
    service time under the calling domain's own guarantees, so the
    node adds no hidden scheduling and two same-seed runs behave
    identically.

    [shard] defaults to [0]: {!Store} and {!Fleet}'s replicated mode
    key whole-page copies as shard 0, while {!Fleet}'s erasure mode
    keys each of a page's [k + m] Reed–Solomon shards separately
    (each shard occupies one slot but holds only [1/k] of the page's
    bytes — capacity here counts {e entries}, the byte overhead is
    the caller's to account).

    Capacity is a hard bound: {!store} on a full node returns
    [`Remote_full] and the caller degrades to the disk tier — a full
    remote node never kills anything. *)

open Engine

type t

val create : ?service:Time.span -> capacity_pages:int -> unit -> t
(** [service] (default 25 us) is the node-side latency per entry
    looked up or stored — DRAM plus the remote NIC, far below a disk
    transaction. *)

val store :
  ?shard:int -> t -> owner:string -> slot:int -> (unit, [ `Remote_full ]) result
(** Idempotent: storing an entry the node already holds succeeds
    without consuming a second slot. *)

val holds : ?shard:int -> t -> owner:string -> slot:int -> bool
val drop : ?shard:int -> t -> owner:string -> slot:int -> unit

val has_room : t -> bool
val used_pages : t -> int
val capacity : t -> int
val service_time : t -> Time.span

val wipe : t -> unit
(** Forget everything — models the remote node power-cycling; owners'
    [in_remote] hints go stale and their next fetch degrades to disk
    (tests only). *)
