(** The tiered backing store: local RAM cache → remote memory node → disk.

    A store sits between one paged driver and its swapfile. Pages the
    driver writes out land in a small local RAM-tier cache (an LRU over
    slot indices); evictions demote cold pages over a {!Usnet.Link} to
    a {!Remote_node}; faults promote them back. The disk (the
    swapfile's SFS data path) stays the durability floor: journaled
    commits always write through, and when the remote node is full or
    the link gives up a demotion degrades to a plain disk write —
    tiering changes latency, never safety.

    Every byte that crosses the wire is charged to the owning domain's
    own link client, admitted under a (p,s,x,l) guarantee, so a
    thrashing tiered domain cannot steal network from its neighbours
    any more than it can steal disk. Packet drops and delays come from
    the seeded {!Inject.link} fault site for the link's name; drops
    are retransmitted a bounded number of times and then the transfer
    is abandoned ([`Link_lost]), falling back to the disk copy when
    one exists.

    Loss accounting is double-entry, checked by tests and the
    [remote] experiment:
    - [drops_seen = retransmits + drop_losses] — every observed drop
      is either retried or abandons its transfer;
    - [transfer_fails = clean_aborts + disk_fallbacks +
      link_lost_slots] — every abandoned transfer is answered exactly
      once: harmless (a disk copy already existed), served from disk,
      or declared lost (only possible for never-durable write-back
      pages). *)

open Engine

type t

type mode =
  | Write_through
      (** non-journaled writes hit the disk before returning; the
          cache and remote node only ever hold clean copies *)
  | Write_back
      (** non-journaled writes land in the RAM tier and return
          immediately; dirty pages reach the remote node or the disk
          on eviction. Journaled commits still write through — the
          PR 4 crash-consistency story is mode-independent. *)

type stats = {
  cache_hits : int;  (** reads served from the local RAM tier *)
  remote_hits : int;  (** reads served from the remote node *)
  remote_misses : int;  (** reads that had to go to disk *)
  promotes : int;  (** pages pulled remote → local cache *)
  demotes : int;  (** pages pushed local cache → remote *)
  remote_fulls : int;  (** demotions refused by a full node *)
  drops_seen : int;  (** packets the fault plan dropped *)
  delays_seen : int;  (** packets the fault plan delayed *)
  retransmits : int;  (** dropped packets that were retried *)
  retx_delays : Time.span list;
      (** the backoff actually slept before each retransmit, in
          chronological order — tests assert the {!backoff} ladder
          (1/2/4/8 ms at the default base) straight off the stats *)
  drop_losses : int;  (** transfers abandoned after the last retry *)
  transfer_fails : int;  (** page transfers that returned [`Link_lost] *)
  clean_aborts : int;  (** failed transfers that needed no answer *)
  disk_fallbacks : int;  (** failed transfers served from disk instead *)
  link_lost_slots : int;  (** slots lost to the link with no disk copy *)
  lost_slots : int;  (** slots the tier declared dead, any cause *)
}

val create :
  ?mode:mode ->
  ?cache_pages:int ->
  ?link_retries:int ->
  ?retx_timeout:Time.span ->
  ?label:string ->
  link:Usnet.Link.t ->
  client:Usnet.Link.client ->
  remote:Remote_node.t ->
  swap:Usbs.Sfs.swapfile ->
  unit ->
  t
(** Defaults: [mode = Write_through], [cache_pages = 32] local RAM
    slots, [link_retries = 3] retransmissions per packet,
    [retx_timeout = 1ms], [label = "tier"]. The [client] must have
    been admitted on [link] by the owning domain; pages at the remote
    node are keyed by the swapfile's name. *)

val backoff : base:Time.span -> attempt:int -> Time.span
(** The deterministic retransmit ladder shared with [Sfs] and
    [Fleet]: the [attempt]-th retry (0-based) backs off
    [base * 2^attempt], bounded at [8 * base] — 1/2/4/8 ms at the
    default 1 ms base. *)

val backing : t -> Backing.t
(** The store as a {!Backing.t} — what [Sd_paged.create ?backing]
    takes. Its [label] is the store's label. *)

type tiered_cap = {
  tc_link : Usnet.Link.t;
  tc_client : Usnet.Link.client;
  tc_remote : Remote_node.t;
  tc_on_store : t -> unit;
      (** receives the created store (for [stats] at teardown) *)
}

type Backing.cap += Tiered of tiered_cap
(** The live capability the registered ["tiered"] backing consumes:
    [Backing.resolve "tiered:cache-pages=24"] yields a factory that,
    given a ctx holding one of these and a swapfile, builds a
    {!create}d store and returns its {!backing}. *)

val stats : t -> stats
(** Always-on plain counters (independent of {!Obs.enabled}); the
    same quantities are mirrored as [tier.*] Obs metrics labelled by
    the swapfile name when observability is on. *)

val books_balanced : t -> bool
(** Both double-entry equations above hold. *)
