open Engine

let page_bytes = 8192 (* mirrors the USBS page size; Sfs keeps it internal *)

type mode = Write_through | Write_back

type stats = {
  cache_hits : int;
  remote_hits : int;
  remote_misses : int;
  promotes : int;
  demotes : int;
  remote_fulls : int;
  drops_seen : int;
  delays_seen : int;
  retransmits : int;
  retx_delays : Time.span list;
  drop_losses : int;
  transfer_fails : int;
  clean_aborts : int;
  disk_fallbacks : int;
  link_lost_slots : int;
  lost_slots : int;
}

type t = {
  mode : mode;
  label : string;
  swap : Usbs.Sfs.swapfile;
  link : Usnet.Link.t;
  client : Usnet.Link.client;
  remote : Remote_node.t;
  owner : string; (* key space at the remote node: the swapfile name *)
  cache_cap : int;
  lru : int Ilist.t; (* front = least recently used *)
  nodes : (int, int Ilist.node) Hashtbl.t;
  evicting : (int, unit) Hashtbl.t;
  disk_valid : bool array;
  in_remote : bool array;
  dead : bool array;
  link_retries : int;
  retx_timeout : Time.span;
  mutable s_cache_hits : int;
  mutable s_remote_hits : int;
  mutable s_remote_misses : int;
  mutable s_promotes : int;
  mutable s_demotes : int;
  mutable s_remote_fulls : int;
  mutable s_drops : int;
  mutable s_delays : int;
  mutable s_retransmits : int;
  mutable s_retx_delays : Time.span list; (* reverse chronological *)
  mutable s_drop_losses : int;
  mutable s_transfer_fails : int;
  mutable s_clean_aborts : int;
  mutable s_disk_fallbacks : int;
  mutable s_link_lost_slots : int;
  mutable s_lost_slots : int;
}

let create ?(mode = Write_through) ?(cache_pages = 32) ?(link_retries = 3)
    ?(retx_timeout = Time.ms 1) ?(label = "tier") ~link ~client ~remote ~swap
    () =
  if cache_pages < 1 then invalid_arg "Store.create: cache_pages must be >= 1";
  if link_retries < 0 then invalid_arg "Store.create: negative link_retries";
  let cap = Usbs.Sfs.page_capacity swap in
  { mode;
    label;
    swap;
    link;
    client;
    remote;
    owner = Usbs.Sfs.swap_name swap;
    cache_cap = cache_pages;
    lru = Ilist.create ();
    nodes = Hashtbl.create 64;
    evicting = Hashtbl.create 8;
    (* the disk is the authority for slots the tier has never seen —
       this is what makes restore-from-journal work unchanged *)
    disk_valid = Array.make (max 1 cap) true;
    in_remote = Array.make (max 1 cap) false;
    dead = Array.make (max 1 cap) false;
    link_retries;
    retx_timeout;
    s_cache_hits = 0;
    s_remote_hits = 0;
    s_remote_misses = 0;
    s_promotes = 0;
    s_demotes = 0;
    s_remote_fulls = 0;
    s_drops = 0;
    s_delays = 0;
    s_retransmits = 0;
    s_retx_delays = [];
    s_drop_losses = 0;
    s_transfer_fails = 0;
    s_clean_aborts = 0;
    s_disk_fallbacks = 0;
    s_link_lost_slots = 0;
    s_lost_slots = 0 }

let stats t =
  { cache_hits = t.s_cache_hits;
    remote_hits = t.s_remote_hits;
    remote_misses = t.s_remote_misses;
    promotes = t.s_promotes;
    demotes = t.s_demotes;
    remote_fulls = t.s_remote_fulls;
    drops_seen = t.s_drops;
    delays_seen = t.s_delays;
    retransmits = t.s_retransmits;
    retx_delays = List.rev t.s_retx_delays;
    drop_losses = t.s_drop_losses;
    transfer_fails = t.s_transfer_fails;
    clean_aborts = t.s_clean_aborts;
    disk_fallbacks = t.s_disk_fallbacks;
    link_lost_slots = t.s_link_lost_slots;
    lost_slots = t.s_lost_slots }

let books_balanced t =
  t.s_drops = t.s_retransmits + t.s_drop_losses
  && t.s_transfer_fails
     = t.s_clean_aborts + t.s_disk_fallbacks + t.s_link_lost_slots

let metric t name = if !Obs.enabled then Obs.Metrics.inc ~label:t.owner name

(* ------------------------------------------------------------------ *)
(* Link transfers                                                      *)

(* MTU-sized fragments of one page, smallest last. *)
let fragments t =
  let mtu = (Usnet.Link.params t.link).Usnet.Net_params.mtu in
  let n = (page_bytes + mtu - 1) / mtu in
  List.init n (fun i ->
      if i = n - 1 then page_bytes - ((n - 1) * mtu) else mtu)

(* The Sfs retry ladder at network scale: the [n]-th retransmit of a
   packet backs off [base * 2^n], bounded at [8 * base] so a long
   retry budget degenerates to a steady (still deterministic) pulse
   rather than an unbounded stall. With the default 1 ms base the
   ladder is the familiar 1/2/4/8 ms. *)
let backoff ~base ~attempt = base * (1 lsl min attempt 3)

(* One packet on the wire. A dropped packet still burned its slot
   time (it was transmitted, then never acked), so the QoS charge
   lands before the fault plan is consulted. *)
let send_frag t bytes =
  let rec attempt left n =
    match Usnet.Link.transmit t.link t.client ~bytes with
    | Error `Retired -> Error `Link_lost
    | Ok () -> (
        match Inject.link ~name:(Usnet.Link.name t.link) with
        | Inject.Deliver -> Ok ()
        | Inject.Delay d ->
            t.s_delays <- t.s_delays + 1;
            Proc.sleep d;
            Ok ()
        | Inject.Drop ->
            t.s_drops <- t.s_drops + 1;
            if left > 0 then begin
              t.s_retransmits <- t.s_retransmits + 1;
              metric t "tier.retransmit";
              let d = backoff ~base:t.retx_timeout ~attempt:n in
              t.s_retx_delays <- d :: t.s_retx_delays;
              Proc.sleep d;
              attempt (left - 1) (n + 1)
            end
            else begin
              t.s_drop_losses <- t.s_drop_losses + 1;
              metric t "tier.link_lost";
              Error `Link_lost
            end)
  in
  attempt t.link_retries 0

(* A whole page across the wire; [request] prepends the 64-byte fetch
   request for the read direction. Abandons at the first lost
   fragment. *)
let transfer_page t ~request =
  let frags = if request then 64 :: fragments t else fragments t in
  let rec go = function
    | [] -> Ok ()
    | b :: rest -> (
        match send_frag t b with Ok () -> go rest | Error _ as e -> e)
  in
  match go frags with
  | Ok () -> Ok ()
  | Error `Link_lost ->
      t.s_transfer_fails <- t.s_transfer_fails + 1;
      Error `Link_lost

(* ------------------------------------------------------------------ *)
(* Local RAM tier (LRU over slot indices)                              *)

let cached t s = Hashtbl.mem t.nodes s

let touch t s =
  match Hashtbl.find_opt t.nodes s with
  | Some n -> Ilist.move_back t.lru n
  | None -> ()

let drop_cache t s =
  match Hashtbl.find_opt t.nodes s with
  | Some n ->
      Ilist.remove t.lru n;
      Hashtbl.remove t.nodes s
  | None -> ()

let drop_remote t s =
  if t.in_remote.(s) then begin
    Remote_node.drop t.remote ~owner:t.owner ~slot:s;
    t.in_remote.(s) <- false
  end

(* Answer a demotion whose only copy was dirty and whose transfer (or
   node) failed: the disk takes it. If the disk eats the write too,
   the tier held the last copy — answer the write-loss duty itself
   and declare the slot dead. *)
let disk_write_slot t s =
  match Usbs.Sfs.write_page t.swap ~page_index:s with
  | Ok () -> t.disk_valid.(s) <- true
  | Error (`Lost_pages _) ->
      Inject.note_killed "tier.demote";
      t.dead.(s) <- true;
      t.s_lost_slots <- t.s_lost_slots + 1
  | Error (`Retired | `Crashed) ->
      (* teardown / crash latched elsewhere; nothing left to account *)
      ()

(* Push one evicted slot down a tier. Inclusive with the remote node:
   a slot that is already remote just leaves the cache. *)
let demote t s =
  if (not t.in_remote.(s)) && not t.dead.(s) then begin
    let dirty = not t.disk_valid.(s) in
    if Remote_node.has_room t.remote then begin
      match transfer_page t ~request:false with
      | Ok () -> (
          Proc.sleep (Remote_node.service_time t.remote);
          match Remote_node.store t.remote ~owner:t.owner ~slot:s with
          | Ok () ->
              t.in_remote.(s) <- true;
              t.s_demotes <- t.s_demotes + 1;
              metric t "tier.demote"
          | Error `Remote_full ->
              (* lost the race for the last slot while on the wire *)
              t.s_remote_fulls <- t.s_remote_fulls + 1;
              metric t "tier.remote_full";
              if dirty then disk_write_slot t s)
      | Error `Link_lost ->
          if dirty then begin
            t.s_disk_fallbacks <- t.s_disk_fallbacks + 1;
            disk_write_slot t s
          end
          else t.s_clean_aborts <- t.s_clean_aborts + 1
    end
    else begin
      t.s_remote_fulls <- t.s_remote_fulls + 1;
      metric t "tier.remote_full";
      if dirty then disk_write_slot t s
    end
  end

(* Evict LRU victims until the cache fits. The victim stays visible
   as cached while its transfer sleeps (the RAM copy exists until the
   copy-out finishes); the [evicting] set keeps a concurrent insert
   from picking the same victim twice. *)
let rec shrink t =
  if Hashtbl.length t.nodes > t.cache_cap then begin
    let victim =
      Ilist.fold
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> if Hashtbl.mem t.evicting s then None else Some s)
        None t.lru
    in
    match victim with
    | None -> () (* everything in flight; transiently over capacity *)
    | Some s ->
        Hashtbl.replace t.evicting s ();
        demote t s;
        Hashtbl.remove t.evicting s;
        drop_cache t s;
        shrink t
  end

let insert_cache t s =
  if not t.dead.(s) then begin
    if cached t s then touch t s
    else begin
      let n = Ilist.make_node s in
      Hashtbl.replace t.nodes s n;
      Ilist.push_back t.lru n;
      shrink t
    end
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

(* Pull one page back from the remote node: request out, node service,
   page fragments back — all on the owner's own link guarantee. *)
let fetch_remote t s =
  if not (Remote_node.holds t.remote ~owner:t.owner ~slot:s) then begin
    (* stale hint (node wiped): not a link failure *)
    t.in_remote.(s) <- false;
    Error `Evicted
  end
  else
    match send_frag t 64 with
    | Error `Link_lost ->
        t.s_transfer_fails <- t.s_transfer_fails + 1;
        Error `Link_lost
    | Ok () -> (
        Proc.sleep (Remote_node.service_time t.remote);
        match transfer_page t ~request:false with
        | Ok () -> Ok ()
        | Error `Link_lost -> Error `Link_lost)

let read_pages t ~page_index ~npages =
  let lost = ref [] in
  let fatal = ref None in
  let run_start = ref 0 and run_len = ref 0 in
  (* coalesce consecutive disk-served slots into one SFS transaction *)
  let flush_run () =
    if !run_len > 0 then begin
      (match
         Usbs.Sfs.read_pages t.swap ~page_index:!run_start ~npages:!run_len
       with
      | Ok () ->
          for s = !run_start to !run_start + !run_len - 1 do
            insert_cache t s
          done
      | Error (`Lost_pages l) ->
          for s = !run_start to !run_start + !run_len - 1 do
            if List.mem s l then lost := s :: !lost else insert_cache t s
          done
      | Error ((`Retired | `Crashed) as e) -> fatal := Some e);
      run_len := 0
    end
  in
  let from_disk s =
    if !run_len = 0 then begin
      run_start := s;
      run_len := 1
    end
    else run_len := !run_len + 1
  in
  let i = ref page_index in
  while !fatal = None && !i < page_index + npages do
    let s = !i in
    if t.dead.(s) then begin
      flush_run ();
      lost := s :: !lost
    end
    else if cached t s then begin
      flush_run ();
      touch t s;
      t.s_cache_hits <- t.s_cache_hits + 1;
      metric t "tier.cache_hit"
    end
    else if t.in_remote.(s) then begin
      flush_run ();
      match fetch_remote t s with
      | Ok () ->
          t.s_remote_hits <- t.s_remote_hits + 1;
          metric t "tier.remote_hit";
          t.s_promotes <- t.s_promotes + 1;
          metric t "tier.promote";
          (* inclusive: the node keeps its copy, so a clean re-eviction
             costs nothing *)
          insert_cache t s
      | Error `Link_lost ->
          if t.disk_valid.(s) then begin
            t.s_disk_fallbacks <- t.s_disk_fallbacks + 1;
            from_disk s;
            flush_run ()
          end
          else begin
            t.s_link_lost_slots <- t.s_link_lost_slots + 1;
            t.s_lost_slots <- t.s_lost_slots + 1;
            t.dead.(s) <- true;
            lost := s :: !lost
          end
      | Error `Evicted ->
          if t.disk_valid.(s) then begin
            from_disk s;
            flush_run ()
          end
          else begin
            t.s_lost_slots <- t.s_lost_slots + 1;
            t.dead.(s) <- true;
            lost := s :: !lost
          end
    end
    else begin
      t.s_remote_misses <- t.s_remote_misses + 1;
      metric t "tier.remote_miss";
      from_disk s
    end;
    incr i
  done;
  flush_run ();
  match !fatal with
  | Some (`Retired | `Crashed) as e -> Error (Option.get e)
  | None ->
      if !lost = [] then Ok () else Error (`Lost_pages (List.rev !lost))

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)

(* Fresh contents for a slot: stale copies anywhere below the cache
   die, and a previously dead slot is live again. *)
let overwrite t s ~disk =
  t.dead.(s) <- false;
  drop_remote t s;
  t.disk_valid.(s) <- disk;
  insert_cache t s

let write_range_through t ~page_index ~npages =
  match Usbs.Sfs.write_pages t.swap ~page_index ~npages with
  | Ok () ->
      for s = page_index to page_index + npages - 1 do
        overwrite t s ~disk:true
      done;
      Ok ()
  | Error (`Lost_pages l) as e ->
      for s = page_index to page_index + npages - 1 do
        if List.mem s l then begin
          (* the caller answers the write loss; the tier just stops
             claiming copies it no longer has *)
          drop_cache t s;
          drop_remote t s;
          t.dead.(s) <- true
        end
        else overwrite t s ~disk:true
      done;
      e
  | Error (`Retired | `Crashed) as e -> e

let write_pages t ~page_index ~npages =
  match t.mode with
  | Write_through -> write_range_through t ~page_index ~npages
  | Write_back ->
      for s = page_index to page_index + npages - 1 do
        overwrite t s ~disk:false
      done;
      Ok ()

let write_page t ~page_index = write_pages t ~page_index ~npages:1

(* Journaled commits always write through — the disk is the
   durability floor in both modes, so the PR 4 crash story (journal
   replay over committed slots) is untouched by tiering. *)
let write_pages_commit t ~page_index ~npages ~pages ~retire =
  match Usbs.Sfs.write_pages_commit t.swap ~page_index ~npages ~pages ~retire with
  | Ok () ->
      for s = page_index to page_index + npages - 1 do
        overwrite t s ~disk:true
      done;
      Ok ()
  | Error (`Lost_pages l) as e ->
      for s = page_index to page_index + npages - 1 do
        if List.mem s l then begin
          drop_cache t s;
          drop_remote t s;
          t.dead.(s) <- true
        end
        else overwrite t s ~disk:true
      done;
      e
  | Error (`Retired | `Crashed) as e -> e

let backing t =
  { Backing.label = t.label;
    page_capacity = (fun () -> Usbs.Sfs.page_capacity t.swap);
    journaled = (fun () -> Usbs.Sfs.swap_journaled t.swap);
    read_pages = (fun ~page_index ~npages -> read_pages t ~page_index ~npages);
    write_page = (fun ~page_index -> write_page t ~page_index);
    write_pages =
      (fun ~page_index ~npages -> write_pages t ~page_index ~npages);
    write_pages_commit =
      (fun ~page_index ~npages ~pages ~retire ->
        write_pages_commit t ~page_index ~npages ~pages ~retire);
    slot_committed = (fun slot -> Usbs.Sfs.slot_committed t.swap slot);
    extent =
      (fun () ->
        (Usbs.Sfs.extent_start t.swap, Usbs.Sfs.extent_blocks t.swap)) }

(* --- backing-axis registration --------------------------------------- *)

type tiered_cap = {
  tc_link : Usnet.Link.t;
  tc_client : Usnet.Link.client;
  tc_remote : Remote_node.t;
  tc_on_store : t -> unit;
}

type Backing.cap += Tiered of tiered_cap

let () =
  Registry.register_exn Backing.axis
    (Registry.manifest ~name:"tiered"
       ~doc:
         "local RAM cache over one remote memory node over the disk \
          (Tier.Store)"
       ~params:
         [ { Registry.p_name = "cache-pages";
             p_doc = "local RAM cache size, pages";
             p_kind = Registry.Int 32 };
           { Registry.p_name = "label";
             p_doc = "store label for metrics and driver names";
             p_kind = Registry.String (Some "tier") } ]
       ~default:"tiered:cache-pages=32" ())
    (fun a ->
      match Registry.Spec.int_param a "cache-pages" ~default:32 with
      | Error e -> Error e
      | Ok cache_pages ->
          let label = Registry.Spec.string_param a "label" ~default:"tier" in
          Ok
            (fun ctx swap ->
              match
                List.find_map (function Tiered c -> Some c | _ -> None) ctx
              with
              | None ->
                  Error "tiered backing needs a Tier.Store.Tiered capability"
              | Some c ->
                  let s =
                    create ~cache_pages ~label ~link:c.tc_link
                      ~client:c.tc_client ~remote:c.tc_remote ~swap ()
                  in
                  c.tc_on_store s;
                  Ok (backing s)))
